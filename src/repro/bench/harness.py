"""Experiment runners for every table and figure of the paper's evaluation.

All running times are **simulated makespans in work units** (see
``repro.parallel.costs``): the paper measures wall-clock milliseconds on a
64-core machine; under the GIL the equivalent quantity is the simulated
parallel time, which preserves exactly the comparisons the paper makes
(who wins, by what factor, how speedups scale with workers).  Sequential
wall-clock is additionally benchmarked by the pytest-benchmark suites.

Experiment scale is controlled by the caller (the ``benchmarks/`` suite
defaults to a quick configuration; set ``REPRO_BENCH_SCALE=full`` there
for the full 16-dataset sweep recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.baselines.matching import MatchingMaintainer
from repro.core.decomposition import core_decomposition, core_histogram
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.datasets import DATASETS
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.parallel.batch import ParallelOrderMaintainer
from repro.bench.workloads import (
    contended_batch,
    dataset_workload,
    disjoint_batches,
    service_trace,
    uniform_update_trace,
)

Edge = Tuple[int, int]

__all__ = [
    "ALGORITHMS",
    "run_remove_insert",
    "table1_datasets",
    "fig3_core_distributions",
    "fig4_running_time",
    "table2_speedups",
    "fig5_locked_vertices",
    "fig6_scalability",
    "fig7_stability",
    "run_service",
    "run_chaos",
    "run_failover",
    "run_representation",
    "run_scheduling",
    "run_sharding",
    "run_queryplane",
    "run_traffic",
    "traffic_profile",
]

# name -> factory(graph, workers) -> maintainer with {insert,remove}_edges
ALGORITHMS: Dict[str, Callable] = {
    "Our": lambda g, p: ParallelOrderMaintainer(g, num_workers=p),
    "JE": lambda g, p: JoinEdgeSetMaintainer(g, num_workers=p),
    "M": lambda g, p: MatchingMaintainer(g, num_workers=p),
}


def run_remove_insert(
    dataset: str,
    batch_size: int,
    workers: int,
    algo: str = "Our",
    seed: int = 0,
    check: bool = False,
    trace_races: bool = False,
) -> Dict[str, object]:
    """One experiment cell: build the full stand-in graph, remove the
    sampled batch, then insert it back (Section 5.2's protocol).

    Returns simulated makespans, total work, wall-clock seconds, and the
    per-edge instrumentation of both phases.  With ``trace_races`` a
    :class:`repro.analysis.RaceDetector` watches the run (``Our`` only)
    and its counters land in the ``analysis`` key; tracing perturbs
    wall-clock, so it is off by default and never affects makespans.
    """
    edges, batch = dataset_workload(dataset, batch_size, seed=seed)
    graph = DynamicGraph(edges)
    detector = None
    if trace_races and algo == "Our":
        from repro.analysis import RaceDetector

        detector = RaceDetector()
        m = ParallelOrderMaintainer(graph, num_workers=workers, detector=detector)
    else:
        m = ALGORITHMS[algo](graph, workers)
    t0 = time.perf_counter()
    rem = m.remove_edges(batch)
    t1 = time.perf_counter()
    ins = m.insert_edges(batch)
    t2 = time.perf_counter()
    if check:
        m.check()
    cell: Dict[str, object] = {
        "dataset": dataset,
        "algo": algo,
        "workers": workers,
        "remove_makespan": rem.makespan,
        "insert_makespan": ins.makespan,
        "remove_work": rem.report.total_work,
        "insert_work": ins.report.total_work,
        "remove_wall_s": t1 - t0,
        "insert_wall_s": t2 - t1,
        "remove_stats": rem.stats,
        "insert_stats": ins.stats,
    }
    if detector is not None:
        cell["analysis"] = detector.report().counters()
    return cell


def run_service(
    dataset: str,
    ops: int = 500,
    workers: int = 4,
    query_rate: float = 0.25,
    seed: int = 0,
    max_batch: int = 64,
    max_delay: Optional[float] = 20_000.0,
    query_pressure: Optional[int] = 32,
    max_pending: Optional[int] = None,
    schedule: str = "min-clock",
    check: bool = False,
) -> Dict[str, object]:
    """The ``service`` workload: drive the serving engine with an
    interleaved insert/remove/query trace over a dataset stand-in and
    report its metrics surface.

    The returned dict carries the engine metrics (``metrics``), the
    wall-clock seconds spent and whether the quiescence accounting
    invariant ``admitted == committed + quarantined + timed_out +
    abandoned`` held after the final drain (``invariant_ok`` — asserted
    by the CI smoke job).
    """
    from repro.service import Engine, EngineConfig

    initial, trace = service_trace(dataset, ops, query_rate=query_rate, seed=seed)
    eng = Engine(
        DynamicGraph(initial),
        EngineConfig(
            max_batch=max_batch,
            max_delay=max_delay,
            query_pressure=query_pressure,
            max_pending=max_pending,
            num_workers=workers,
            schedule=schedule,
            seed=seed,
        ),
    )
    t0 = time.perf_counter()
    for item in trace:
        if item[0] == "query":
            eng.query(item[1], *item[2])
        elif item[0] == "insert":
            eng.insert(item[1], item[2])
        else:
            eng.remove(item[1], item[2])
    eng.flush()
    wall = time.perf_counter() - t0
    if check:
        eng.check()
    m = eng.metrics()
    c = m["counters"]
    invariant_ok = (
        c["admitted"]
        == c["committed"] + c["quarantined"] + c["timed_out"] + c["abandoned"]
        and c["in_flight"] == 0
    )
    return {
        "dataset": dataset,
        "workers": workers,
        "ops": len(trace),
        "wall_s": wall,
        "metrics": m,
        "invariant_ok": invariant_ok,
    }


def run_chaos(
    dataset: str,
    ops: int = 400,
    workers: int = 4,
    query_rate: float = 0.2,
    seed: int = 0,
    max_batch: int = 16,
    crash_rate: float = 0.01,
    stall_rate: float = 0.01,
    timeout_rate: float = 0.01,
    max_crashes: Optional[int] = 8,
    checkpoint_every: int = 4,
    restarts: int = 2,
    verify_determinism: bool = True,
    check: bool = False,
) -> Dict[str, object]:
    """The ``chaos`` workload: the serving engine under a seeded fault
    schedule, with crash recovery and simulated process restarts, judged
    differentially against an uninterrupted run.

    Three engines see the same trace: a **faulty** engine (fault plane
    armed, WAL journal, periodic checkpoints, retries sized above the
    crash budget so nothing is abandoned), a **clean** engine (no
    faults), and — at ``restarts`` evenly spaced points — the faulty
    engine is torn down and rebuilt from its journal via
    :meth:`Engine.from_journal`, continuing the stream where it left
    off.  Every query answer is compared between the two engines as the
    stream runs, and at the end:

    * ``recovered_ok`` — the faulty engine's cores equal the clean
      engine's on every vertex (the ISSUE's headline claim);
    * ``oracle_ok`` — both equal a from-scratch
      :func:`~repro.core.decomposition.core_decomposition` of the edge
      set reconstructed *from the journal alone*;
    * ``determinism_ok`` (with ``verify_determinism``) — a second
      faulty run with the same seed reproduced the same journal bytes
      and the same fault-schedule digest.

    ``max_delay`` is disabled so both engines cut at identical points
    (retry backoff advances only the faulty engine's clock).
    """
    from repro.faults.plane import FaultSpec
    from repro.service import Engine, EngineConfig

    spec = FaultSpec(
        crash_rate=crash_rate, stall_rate=stall_rate,
        timeout_rate=timeout_rate, max_crashes=max_crashes,
    )
    budget = max_crashes if max_crashes is not None else 64
    faulty_cfg = EngineConfig(
        max_batch=max_batch, num_workers=workers, seed=seed,
        faults=spec, checkpoint_every=checkpoint_every,
        max_retries=budget + 1,
    )
    clean_cfg = EngineConfig(max_batch=max_batch, num_workers=workers, seed=seed)
    initial, trace = service_trace(dataset, ops, query_rate=query_rate, seed=seed)

    restart_every = len(trace) // (restarts + 1) if restarts else len(trace) + 1

    def drive(cfg: EngineConfig, do_restarts: bool):
        eng = Engine(DynamicGraph(initial), cfg)
        other = Engine(DynamicGraph(initial), clean_cfg)
        mismatches = 0
        performed = 0
        for i, item in enumerate(trace):
            if do_restarts and restarts and i and i % restart_every == 0:
                # simulated process crash at a quiescent point: drain
                # both engines, then resurrect the faulty one from its
                # journal alone
                eng.flush()
                other.flush()
                eng = Engine.from_journal(eng.journal, cfg)
                performed += 1
            if item[0] == "query":
                a = eng.query(item[1], *item[2])
                b = other.query(item[1], *item[2])
                if a.value != b.value or a.epoch != b.epoch:
                    mismatches += 1
            elif item[0] == "insert":
                eng.insert(item[1], item[2])
                other.insert(item[1], item[2])
            else:
                eng.remove(item[1], item[2])
                other.remove(item[1], item[2])
        eng.flush()
        other.flush()
        return eng, other, mismatches, performed

    t0 = time.perf_counter()
    faulty, clean, query_mismatches, performed = drive(faulty_cfg, do_restarts=True)
    wall = time.perf_counter() - t0
    if check:
        faulty.check()
        clean.check()

    fc = faulty.cores()
    recovered_ok = fc == clean.cores()
    # independent oracle: a from-scratch decomposition of the edge set
    # reconstructed from the journal alone.  Vertices that lost their
    # last edge are absent from the edge list but live on in the engine
    # with core 0 — they must agree too.
    oracle = dict(
        core_decomposition(DictGraph(faulty.journal.final_edges())).core
    )
    oracle_ok = (
        all(fc.get(u) == k for u, k in oracle.items())
        and all(k == 0 for u, k in fc.items() if u not in oracle)
    )

    determinism_ok = None
    if verify_determinism:
        again, _, _, _ = drive(faulty_cfg, do_restarts=True)
        determinism_ok = (
            again.journal.digest() == faulty.journal.digest()
            and again.faults is not None and faulty.faults is not None
            and again.faults.digest() == faulty.faults.digest()
        )

    m = faulty.metrics()
    c = m["counters"]
    invariant_ok = (
        c["admitted"]
        == c["committed"] + c["quarantined"] + c["timed_out"] + c["abandoned"]
        and c["in_flight"] == 0
    )
    return {
        "dataset": dataset,
        "workers": workers,
        "ops": len(trace),
        "seed": seed,
        "spec": {
            "crash_rate": crash_rate, "stall_rate": stall_rate,
            "timeout_rate": timeout_rate, "max_crashes": max_crashes,
        },
        "restarts": performed,
        "wall_s": wall,
        "metrics": m,
        "faults": dict(m["faults"]),
        "epoch": faulty.epoch,
        "journal_records": len(faulty.journal),
        "journal_digest": faulty.journal.digest(),
        "schedule_digest": (
            faulty.faults.digest() if faulty.faults is not None else None
        ),
        "query_mismatches": query_mismatches,
        "recovered_ok": recovered_ok,
        "oracle_ok": oracle_ok,
        "determinism_ok": determinism_ok,
        "invariant_ok": invariant_ok,
        # headline gate for the CI chaos-smoke job
        "ok": bool(
            recovered_ok and oracle_ok and invariant_ok
            and query_mismatches == 0
            and (determinism_ok is None or determinism_ok)
        ),
    }


def run_failover(
    dataset: str,
    ops: int = 400,
    workers: int = 4,
    query_rate: float = 0.25,
    seed: int = 0,
    max_batch: int = 8,
    replicas: int = 3,
    ship_lag: int = 6,
    primary_crash_rate: float = 0.01,
    primary_crashes: int = 2,
    crash_rate: float = 0.0,
    stall_rate: float = 0.0,
    timeout_rate: float = 0.0,
    max_crashes: Optional[int] = 4,
    checkpoint_every: int = 4,
    verify_determinism: bool = True,
) -> Dict[str, object]:
    """The ``failover`` workload: a replica set under seeded primary
    deaths, judged on the three replication promises
    (``docs/replication.md``):

    * **zero committed-op loss** — every update the set acknowledged as
      ``committed`` (minus cancelled net no-ops, which are never
      journaled) appears in the final primary's journal, across every
      promotion;
    * **divergence bounded by replication lag** — every follower query
      answer equals the primary's snapshot *at the epoch the follower
      reported* (``replica_epoch``), i.e. replicas serve exactly the
      lag-old truth, never a wrong one, and the observed
      ``replica_lag_records`` stays within the shipping-lag bound;
    * **recovery-time objective** — promotions (each internally verified
      bit-identical against ``Engine.from_journal`` of the committed
      prefix; :meth:`ReplicaSet.promote` raises otherwise) are timed and
      reported as RTO wall milliseconds plus catch-up record counts.

    Engine-level worker faults (``crash_rate`` etc.) can ride along so
    failover is exercised on journals containing aborted intents; the
    final state is additionally checked against a from-scratch
    decomposition of the journal's edge set, and (with
    ``verify_determinism``) a same-seed rerun must reproduce the same
    journal bytes, crash schedule and promotion log.
    """
    from repro.faults.plane import FaultSpec
    from repro.replication import ReplicaSet
    from repro.service import EngineConfig
    from repro.service.snapshots import QUERY_KINDS

    engine_faults = None
    if crash_rate or stall_rate or timeout_rate:
        engine_faults = FaultSpec(
            crash_rate=crash_rate, stall_rate=stall_rate,
            timeout_rate=timeout_rate, max_crashes=max_crashes,
        )
    budget = max_crashes if max_crashes is not None else 64
    cfg = EngineConfig(
        max_batch=max_batch, num_workers=workers, seed=seed,
        faults=engine_faults, checkpoint_every=checkpoint_every,
        max_retries=budget + 1,
    )
    process_spec = FaultSpec(
        crash_rate=primary_crash_rate, max_crashes=primary_crashes,
    ) if primary_crash_rate else None
    initial, trace = service_trace(dataset, ops, query_rate=query_rate,
                                   seed=seed)

    def drive():
        rs = ReplicaSet(
            DynamicGraph(initial), cfg, replicas=replicas,
            ship_lag=ship_lag, primary_faults=process_spec,
            promote_on_crash=True,
        )
        acked: Dict[str, str] = {}     # committed update id -> detail
        stats = {
            "replica_queries": 0, "stale_answers": 0,
            "divergence_violations": 0, "uncomparable": 0,
            "max_lag_records": 0, "headless_rejects": 0,
        }

        def note(resp):
            if resp.op != "query" and resp.status == "committed":
                acked[resp.id] = resp.detail or ""
            if resp.status == "rejected" and resp.error \
                    and resp.error["code"] == "primary-down":
                stats["headless_rejects"] += 1

        uid = 0
        for item in trace:
            if item[0] == "query":
                resp = rs.query(item[1], *item[2])
                if resp.replica_lag_records is not None:
                    stats["replica_queries"] += 1
                    stats["max_lag_records"] = max(
                        stats["max_lag_records"], resp.replica_lag_records
                    )
                if (resp.status == "committed"
                        and resp.replica_epoch is not None
                        and rs.primary is not None):
                    handler = QUERY_KINDS[item[1]]
                    try:
                        pinned = rs.primary.view(resp.replica_epoch)
                    except ValueError:
                        # the promoted primary's checkpoint floor rose
                        # past this replica's epoch — uncomparable
                        stats["uncomparable"] += 1
                    else:
                        want = handler(pinned, tuple(item[2]))
                        if resp.value != want:
                            stats["divergence_violations"] += 1
                        live = handler(rs.primary.view(), tuple(item[2]))
                        if resp.value != live:
                            stats["stale_answers"] += 1
            else:
                rid = f"u{uid}"
                uid += 1
                if item[0] == "insert":
                    note(rs.insert(item[1], item[2], id=rid))
                else:
                    note(rs.remove(item[1], item[2], id=rid))
                for r in rs.take_completed():
                    note(r)
        for r in rs.flush():
            note(r)
        return rs, acked, stats

    t0 = time.perf_counter()
    rs, acked, stats = drive()
    wall = time.perf_counter() - t0

    # ----- zero committed-op loss ------------------------------------
    # every acked non-cancelled update must be named by a committed
    # intent in the final primary's journal (the prefix survives every
    # promotion, so one replay covers all generations)
    journaled: set = set()
    lost: List[str] = []
    if rs.primary is not None:
        replay = rs.primary.journal.replay()
        for b in replay.committed:
            journaled.update(b.ids)
        lost = sorted(
            rid for rid, detail in acked.items()
            if detail != "cancelled" and rid not in journaled
        )
    committed_op_loss = len(lost)

    # ----- final state: invariants + from-scratch oracle -------------
    final_state_ok = rs.primary is not None
    invariant_ok = None
    if rs.primary is not None:
        try:
            rs.check()
            invariant_ok = True
        except (AssertionError, ValueError):
            invariant_ok = False
        fc = rs.primary.cores()
        oracle = dict(
            core_decomposition(
                DictGraph(rs.primary.journal.final_edges())
            ).core
        )
        final_state_ok = (
            invariant_ok
            and all(fc.get(u) == k for u, k in oracle.items())
            and all(k == 0 for u, k in fc.items() if u not in oracle)
        )

    # ----- RTO -------------------------------------------------------
    promos = rs.promotions
    rto = None
    if promos:
        walls = sorted(p.wall_s * 1000 for p in promos)
        rto = {
            "median_ms": statistics.median(walls),
            "max_ms": walls[-1],
            "median_catchup_records": statistics.median(
                sorted(p.catchup_records for p in promos)
            ),
        }

    # ----- determinism -----------------------------------------------
    def promo_log(r):
        return [(p.generation, p.replica, p.epoch, p.prefix_records)
                for p in r.promotions]

    determinism_ok = None
    if verify_determinism:
        rs2, _, _ = drive()
        determinism_ok = (
            rs2.primary is not None and rs.primary is not None
            and rs2.primary.journal.digest() == rs.primary.journal.digest()
            and promo_log(rs2) == promo_log(rs)
            and (
                rs.process_faults is None
                or rs2.process_faults.digest() == rs.process_faults.digest()
            )
        )

    # the shipping policy lets an async replica drift to ship_lag, plus
    # the records one commit cycle appends before the pump runs
    lag_bound = ship_lag + 4
    verdicts = {
        "zero_loss": committed_op_loss == 0,
        "divergence_bounded": (
            stats["divergence_violations"] == 0
            and stats["max_lag_records"] <= lag_bound
        ),
        "promotions_verified": len(promos) == rs.primary_crashes,
        "final_state_ok": bool(final_state_ok),
        "determinism_ok": determinism_ok,
    }
    return {
        "dataset": dataset,
        "workers": workers,
        "ops": len(trace),
        "seed": seed,
        "replicas": replicas,
        "ship_lag": ship_lag,
        "lag_bound": lag_bound,
        "primary_crash_rate": primary_crash_rate,
        "primary_crash_budget": primary_crashes,
        "wall_s": wall,
        "primary_crashes": rs.primary_crashes,
        "promotions": len(promos),
        "rto": rto,
        "committed_op_loss": committed_op_loss,
        "lost_ids": lost[:16],
        "acked_updates": len(acked),
        "journaled_ids": len(journaled),
        "replica_queries": stats["replica_queries"],
        "stale_answers": stats["stale_answers"],
        "divergence_violations": stats["divergence_violations"],
        "uncomparable": stats["uncomparable"],
        "max_lag_records": stats["max_lag_records"],
        "headless_rejects": stats["headless_rejects"],
        "epoch": rs.primary.epoch if rs.primary is not None else None,
        "journal_records": (
            len(rs.primary.journal) if rs.primary is not None else 0
        ),
        "journal_digest": (
            rs.primary.journal.digest() if rs.primary is not None else ""
        ),
        "schedule_digest": (
            rs.process_faults.digest()
            if rs.process_faults is not None else None
        ),
        "replication": rs.metrics(),
        "verdicts": verdicts,
        # headline gate for the CI replication-smoke job
        "ok": all(v for v in verdicts.values() if v is not None),
    }


def run_representation(
    dataset: str,
    batch_size: int = 300,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """Graph-representation workload: dict-backed vs array-backed substrate.

    Times the two sequential hot paths on both substrates and reports the
    array/dict speedups:

    * *decomposition* — a full BZ peel of the dataset stand-in: the
      generic hash-keyed kernel over :class:`DictGraph` against the
      flat-array kernel over the interned :class:`DynamicGraph`;
    * *maintenance* — the Section 5.2 protocol run sequentially through
      :class:`OrderMaintainer` (remove the sampled batch edge by edge,
      insert it back), exercising the k-order, ``d_out``/``mcd`` storage
      and the graph mutation paths end to end.

    Wall-clock is the best of ``repeats`` runs, with the two substrates
    *interleaved* inside each repeat so machine-load drift hits both
    equally; graph construction is excluded (both substrates build from
    the same edge list).  The CI smoke job asserts the combined
    ``speedup`` stays above a floor so the array substrate can never
    silently regress behind the dict baseline it replaced.
    """
    edges, batch = dataset_workload(dataset, batch_size, seed=seed)

    def best_interleaved(pairs) -> List[float]:
        """pairs: [(make, run), ...]; returns best wall-clock per pair."""
        times: List[List[float]] = [[] for _ in pairs]
        for _ in range(repeats):
            for i, (make, run) in enumerate(pairs):
                subject = make()
                t0 = time.perf_counter()
                run(subject)
                times[i].append(time.perf_counter() - t0)
        return [min(ts) for ts in times]

    def drive(m: OrderMaintainer) -> None:
        for u, v in batch:
            m.remove_edge(u, v)
        for u, v in batch:
            m.insert_edge(u, v)

    dict_decomp, array_decomp = best_interleaved(
        [
            (lambda: DictGraph(edges), core_decomposition),
            (lambda: DynamicGraph(edges), core_decomposition),
        ]
    )
    dict_maint, array_maint = best_interleaved(
        [
            (lambda: OrderMaintainer(DictGraph(edges)), drive),
            (lambda: OrderMaintainer(DynamicGraph(edges)), drive),
        ]
    )

    g = DynamicGraph(edges)
    decomp_speedup = dict_decomp / max(array_decomp, 1e-9)
    maint_speedup = dict_maint / max(array_maint, 1e-9)
    return {
        "dataset": dataset,
        "n": g.num_vertices,
        "m": g.num_edges,
        "batch": len(batch),
        "repeats": repeats,
        "dict_decomp_s": dict_decomp,
        "array_decomp_s": array_decomp,
        "decomp_speedup": decomp_speedup,
        "dict_maint_s": dict_maint,
        "array_maint_s": array_maint,
        "maint_speedup": maint_speedup,
        # headline metric (geometric mean of the two phases) — what the
        # CI smoke gate asserts against
        "speedup": (decomp_speedup * maint_speedup) ** 0.5,
    }


def run_scheduling(
    dataset: str,
    batch_size: int = 300,
    workers: int = 48,
    hubs: int = 48,
    seed: int = 0,
    policies: Sequence[str] = ("fifo", "lpt", "conflict-aware"),
    thread_repeats: int = 3,
) -> Dict[str, object]:
    """Scheduling-policy workload: the contended hub batch under each
    batch-scheduling policy (see :mod:`repro.parallel.scheduling`).

    For every policy the Section 5.2 protocol runs on a fresh graph
    (remove the hub-incident batch, insert it back) and the row records
    the simulated makespans plus the contention counters the policy is
    supposed to move: ``lock_failures``, ``contended_time``,
    ``spin_time`` and — for wave-emitting policies — the per-wave
    breakdown and wave count of the insert phase.

    The thread backend (:class:`ThreadedOrderMaintainer`) is additionally
    timed per policy (best of ``thread_repeats`` wall-clock runs) so a
    scheduling win in simulation can be checked against real lock
    traffic: the conflict-aware plan must never make the threaded path
    slower.

    The headline ``speedup`` is the fifo/conflict-aware ratio of total
    simulated makespan (remove + insert) — the CI smoke gate asserts it
    stays above a floor.
    """
    from repro.parallel.threads import ThreadedOrderMaintainer

    edges, batch = contended_batch(dataset, batch_size, hubs=hubs, seed=seed)

    rows: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        m = ParallelOrderMaintainer(
            DynamicGraph(edges), num_workers=workers, policy=policy, seed=seed
        )
        rem = m.remove_edges(batch)
        ins = m.insert_edges(batch)

        def phase(res) -> Dict[str, object]:
            rep = res.report
            return {
                "makespan": rep.makespan,
                "total_work": rep.total_work,
                "lock_acquires": rep.lock_acquires,
                "lock_failures": rep.lock_failures,
                "contended_time": rep.contended_time,
                "spin_time": rep.spin_time,
                "num_waves": res.plan.num_waves,
                "conflicts": res.plan.conflicts,
            }

        thread_wall = float("inf")
        for _ in range(thread_repeats):
            tm = ThreadedOrderMaintainer(
                DynamicGraph(edges), num_workers=workers, policy=policy
            )
            t0 = time.perf_counter()
            tm.remove_edges(batch)
            tm.insert_edges(batch)
            thread_wall = min(thread_wall, time.perf_counter() - t0)

        rows[policy] = {
            "remove": phase(rem),
            "insert": phase(ins),
            "makespan": rem.makespan + ins.makespan,
            "wave_contention": {
                str(k): v for k, v in ins.report.wave_contention.items()
            },
            "thread_wall_s": thread_wall,
        }

    baseline = rows[policies[0]]["makespan"]
    for row in rows.values():
        row["speedup_vs_fifo"] = baseline / max(row["makespan"], 1e-9)

    g = DynamicGraph(edges)
    return {
        "dataset": dataset,
        "n": g.num_vertices,
        "m": g.num_edges,
        "batch": len(batch),
        "hubs": hubs,
        "workers": workers,
        "policies": rows,
        # headline metric — what the CI smoke gate asserts against
        "speedup": (
            rows["conflict-aware"]["speedup_vs_fifo"]
            if "conflict-aware" in rows
            else 1.0
        ),
    }


def run_sharding(
    num_vertices: int = 1200,
    ops: int = 12000,
    shards: int = 4,
    repeats: int = 3,
    seed: int = 0,
    crash_txs: Sequence[int] = (0, 5),
) -> Dict[str, object]:
    """Sharded scale-out workload: process backend vs one thread engine.

    Drives the same uniform update trace
    (:func:`repro.bench.workloads.uniform_update_trace` — the
    cross-shard *worst case*: at N shards a fraction (N-1)/N of ops
    spans two shards) through

    * a single :class:`~repro.service.engine.Engine` on the thread
      backend, and
    * a :class:`~repro.service.sharding.ShardedEngine` on the process
      backend with ``shards`` OS-process workers,

    both with the same total worker budget.  Wall-clock is best of
    ``repeats`` (the box is noisy; min is the stable statistic).  Every
    repeat also checks the stitched core map is **bit-identical** to the
    single engine's — the differential guarantee the speedup must not
    buy its way out of.

    A second, smaller pass exercises the 2PC crash windows: for every
    router crash point the run is re-driven with an injected
    :class:`~repro.service.sharding.RouterCrashed`, recovered via
    :meth:`~repro.service.sharding.ShardedEngine.from_journals`, and the
    recovered stitch is checked against a fresh single-engine
    decomposition of the recovered edge set.

    The headline ``speedup`` is monolith/sharded wall-clock; ``ok``
    requires bit-identity everywhere and every crash window recovered.
    """
    import os
    import shutil
    import tempfile

    from repro.service.engine import Engine, EngineConfig
    from repro.service.sharding import (
        CRASH_POINTS, RouterCrashed, ShardedEngine,
    )

    trace = uniform_update_trace(num_vertices, ops, seed=seed)
    cross = sum(
        1 for _, u, v in trace
        if u % shards != v % shards
    )

    mono_walls: List[float] = []
    shard_walls: List[float] = []
    identical = True
    for _ in range(repeats):
        t0 = time.perf_counter()
        mono = Engine(DynamicGraph(),
                      EngineConfig(backend="thread", num_workers=shards))
        for op, u, v in trace:
            getattr(mono, op)(u, v)
        mono.flush()
        mono_cores = dict(mono.maintainer.cores())
        mono.close()
        mono_walls.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        sharded = ShardedEngine(
            DynamicGraph(),
            EngineConfig(backend="process", shards=shards,
                         num_workers=shards),
        )
        for op, u, v in trace:
            getattr(sharded, op)(u, v)
        sharded.flush()
        shard_cores = sharded.cores()
        sharded.close()
        shard_walls.append(time.perf_counter() - t0)
        identical = identical and shard_cores == mono_cores

    # ----- crash windows: recovery must match a fresh single engine --
    crash_trace = uniform_update_trace(
        max(64, num_vertices // 8), max(512, ops // 16), seed=seed + 1
    )
    recoveries = {}
    tmp = tempfile.mkdtemp(prefix="repro-sharding-bench-")
    try:
        for point in CRASH_POINTS:
            for txseq in crash_txs:
                base = os.path.join(tmp, f"{point}-{txseq}")
                eng = ShardedEngine(
                    DynamicGraph(),
                    EngineConfig(backend="sim", shards=shards,
                                 journal_path=base, cross_group=4),
                    crash_2pc={point: txseq},
                )
                crashed = False
                try:
                    for op, u, v in crash_trace:
                        getattr(eng, op)(u, v)
                    eng.flush()
                except RouterCrashed:
                    crashed = True
                    eng.abandon()
                if not crashed:
                    eng.close()
                rec = ShardedEngine.from_journals(
                    base, EngineConfig(backend="sim", shards=shards)
                )
                got = rec.cores()
                union = set()
                for sh in rec.shards:
                    for u, v in sh.edges():
                        union.add(canonical_edge(u, v))
                rec.close()
                oracle = Engine(
                    DynamicGraph(sorted(union, key=repr)),
                    EngineConfig(backend="sim"),
                )
                fresh = dict(oracle.maintainer.cores())
                oracle.close()
                recoveries[f"{point}@tx{txseq}"] = {
                    "crashed": crashed,
                    "resolutions": len(rec.resolutions),
                    "identical": got == fresh,
                }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    mono_wall = min(mono_walls)
    shard_wall = min(shard_walls)
    recovered_ok = all(r["identical"] for r in recoveries.values())
    crash_seen = any(r["crashed"] for r in recoveries.values())
    return {
        "num_vertices": num_vertices,
        "ops": ops,
        "cross_ops": cross,
        "shards": shards,
        "repeats": repeats,
        "seed": seed,
        "mono_wall_s": mono_wall,
        "shard_wall_s": shard_wall,
        "mono_walls_s": mono_walls,
        "shard_walls_s": shard_walls,
        "bit_identical": identical,
        "crash_recoveries": recoveries,
        "crash_windows_exercised": crash_seen,
        # headline metric — what the CI smoke gate asserts against
        "speedup": mono_wall / max(shard_wall, 1e-9),
        "ok": identical and recovered_ok and crash_seen,
    }


def _queryplane_workload(num_vertices: int, queries: int, updates: int,
                         seed: int):
    """The 99/1 read-heavy mix: a seed graph, a query stream dominated
    by point lookups (the realistic serving shape — aggregates amortize
    through the per-view caches), and a small interleaved update trace."""
    import random

    from repro.graph.generators import erdos_renyi

    rng = random.Random(seed)
    initial = erdos_renyi(num_vertices, 3 * num_vertices, seed=seed)
    verts = sorted({w for e in initial for w in e})
    kinds = ("core", "in_k_core", "k_shell", "degeneracy",
             "shell_histogram")
    weights = (0.55, 0.30, 0.05, 0.05, 0.05)
    qitems: List[Tuple[str, Tuple]] = []
    for kind in rng.choices(kinds, weights=weights, k=queries):
        if kind == "core":
            qitems.append((kind, (rng.choice(verts),)))
        elif kind == "in_k_core":
            qitems.append((kind, (rng.choice(verts), rng.randrange(1, 8))))
        elif kind == "k_shell":
            qitems.append((kind, (rng.randrange(1, 6),)))
        else:
            qitems.append((kind, ()))
    ups = uniform_update_trace(num_vertices, updates, seed=seed + 1)
    return initial, qitems, ups


def _qp_verify(snapshots, samples) -> bool:
    """Every sampled raw envelope must be bit-identical to the store's
    view at the stamped epoch — the differential gate the speedup must
    not buy its way out of."""
    from repro.service.snapshots import QUERY_KINDS

    for kind, qargs, raw in samples:
        value, epoch, _stale, err = raw
        if epoch is None or epoch < snapshots.min_epoch:
            return False
        expected = QUERY_KINDS[kind](snapshots.view(epoch), qargs)
        if err is not None:
            # both paths refuse a 'core' lookup of an unknown vertex;
            # the refusal is correct iff the view agrees there is no core
            code = err["code"] if isinstance(err, dict) else err[0]
            if not (kind == "core" and code == "unknown-vertex"
                    and expected is None):
                return False
        elif value != expected:
            return False
    return True


def run_queryplane(
    num_vertices: int = 400,
    queries: int = 1_000_000,
    update_rate: float = 0.01,
    readers: Sequence[int] = (1, 2, 4),
    frame: int = 512,
    seed: int = 0,
    workers: int = 1,
    repeats: int = 2,
    recovery: bool = True,
) -> Dict[str, object]:
    """Wait-free query plane vs the in-engine query path (ISSUE 9).

    Drives the same read-heavy trace — ``queries`` snapshot queries with
    an ``update_rate`` fraction of interleaved edge updates (the 99/1
    mix at the defaults) — through

    * the classic path: every query funnels through
      :meth:`Engine.query`, coupling read throughput to the engine loop;
    * the query plane: the engine only applies updates (publishing each
      epoch to the shared-memory double buffer) while a
      :class:`~repro.service.queryplane.ReaderPool` of N OS processes
      answers the query stream from the pinned buffer in batched frames.

    The trace is phased — update burst, then query burst — and the
    reported throughput is queries per second of *query-serving* time:
    the update bursts are identical engine work in both legs (on a
    multi-core host they additionally overlap the reader processes), so
    they are committed outside the timed windows rather than letting a
    small CI box serialize them into both walls.  Sampled answers are
    checked **bit-identical** to ``SnapshotStore.view(epoch)`` at the
    stamped epoch (evicted epochs rebuild from history deltas, so the
    check is exact even behind the LRU window).

    A separate smaller leg exercises mid-stream recovery: the primary
    journals with checkpoints, dies between two query bursts, restarts
    via :meth:`Engine.from_journal`, and **rebinds the same publisher**
    — attached readers keep answering across the restart, sampled
    answers stay bit-identical, and a pin below the checkpoint-truncated
    ``min_epoch`` draws the structured ``epoch-truncated`` refusal.

    The headline ``speedup`` is the largest reader count's throughput
    over the in-engine path; ``ok`` additionally requires bit-identity
    everywhere and a clean recovery leg.
    """
    import os
    import shutil
    import tempfile

    from repro.service.engine import Engine, EngineConfig
    from repro.service.queryplane import ReaderPool
    from repro.service.requests import E_EPOCH_TRUNCATED

    updates = max(1, int(queries * update_rate / (1.0 - update_rate)))
    initial, qitems, ups = _queryplane_workload(
        num_vertices, queries, updates, seed
    )

    # ----- baseline: every query enters the engine loop ---------------
    # both legs apply the identical update trace through an identical
    # engine (``workers`` simulated maintainer workers) — only the read
    # path differs, so the update cost cancels out of the comparison
    eng = Engine(DynamicGraph(initial), EngineConfig(num_workers=workers))
    # The trace is phased: an (untimed) update burst commits fresh
    # epochs, then a timed query burst serves against them.  Epochs
    # churn across the whole run exactly like the interleaved mix, but
    # the timed windows contain only query serving — the update cost is
    # identical engine work in both legs (and on a multi-core host it
    # overlaps the reader processes anyway), so counting it in the walls
    # would only dilute the read-path comparison on small CI boxes.
    # enough phases to churn epochs mid-run, few enough that each timed
    # window amortises the per-phase reader wakeups on small boxes
    phases = max(4, min(16, len(ups) // 4))
    qper = (queries + phases - 1) // phases

    def _update_burst(eng, phase, state):
        goal = min(len(ups), ((phase + 1) * len(ups)) // phases)
        while state[0] < goal:
            op, u, v = ups[state[0]]
            getattr(eng, op)(u, v)
            state[0] += 1
        eng.flush()

    # each phase's timed burst is repeated and the best wall kept —
    # identically for both legs — so a scheduler stall on a shared CI
    # box doesn't charge one leg a tail it didn't earn
    state = [0]
    base_samples = []
    engine_wall = 0.0
    for phase in range(phases):
        _update_burst(eng, phase, state)
        chunk = qitems[phase * qper:(phase + 1) * qper]
        best = None
        for _rep in range(max(1, repeats)):
            t0 = time.perf_counter()
            for kind, qargs in chunk:
                resp = eng.query(kind, *qargs)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        engine_wall += best or 0.0
        if chunk:
            # a quarantined answer (unknown vertex) carries no epoch;
            # the engine answered it against the then-latest view
            ep = resp.epoch if resp.epoch is not None \
                else eng.snapshots.epoch
            base_samples.append((kind, qargs,
                                 (resp.value, ep, 0, resp.error)))
    base_ok = _qp_verify(eng.snapshots, base_samples)
    eng.close()
    engine_qps = queries / max(engine_wall, 1e-9)

    # ----- the wait-free plane at each reader count --------------------
    # each reader answers its own partition of the phase in a local loop
    # (N independent clients, each with a private SnapshotReader); the
    # parent applies the phase's update burst, then is idle in poll()
    # while the readers serve
    pool_cells: Dict[int, Dict[str, float]] = {}
    identical = base_ok
    for n in readers:
        eng = Engine(DynamicGraph(initial), EngineConfig(num_workers=workers))
        publisher = eng.enable_queryplane()
        samples = []
        state = [0]
        wall = 0.0
        try:
            with ReaderPool(publisher.ctrl_name, readers=n) as pool:
                eng.bind_read_counter(pool.reads_total)
                for phase in range(phases):
                    _update_burst(eng, phase, state)
                    chunk = qitems[phase * qper:(phase + 1) * qper]
                    if not chunk:
                        continue
                    slices = [chunk[r::n] for r in range(n)]
                    pool.preload(slices)
                    best = None
                    per_reader = None
                    for _rep in range(max(1, repeats)):
                        t0 = time.perf_counter()
                        got_now = pool.run(sample_every=frame)
                        dt = time.perf_counter() - t0
                        if best is None or dt < best:
                            best = dt
                        if per_reader is None:
                            per_reader = got_now
                    wall += best or 0.0
                    for r, got in enumerate(per_reader):
                        for local_i, raw in got:
                            samples.append((*slices[r][local_i], raw))
                eng.flush()
            identical = identical and _qp_verify(eng.snapshots, samples)
        finally:
            eng.bind_read_counter(None)
            eng.close()
            publisher.close()
        qps = queries / max(wall, 1e-9)
        pool_cells[n] = {
            "wall_s": wall,
            "qps": qps,
            "speedup": qps / engine_qps,
            "samples": len(samples),
        }

    # ----- mid-stream recovery leg -------------------------------------
    rec: Dict[str, object] = {"ran": False}
    if recovery:
        small_q = max(2 * frame, queries // 50)
        tmp = tempfile.mkdtemp(prefix="repro-queryplane-bench-")
        path = os.path.join(tmp, "qp.journal")
        try:
            cfg = EngineConfig(max_batch=4, journal_path=path,
                               checkpoint_every=3)
            eng = Engine(DynamicGraph(initial), cfg)
            publisher = eng.enable_queryplane()
            samples = []
            # denser cadence than the throughput legs so several
            # checkpoints land before the crash and recovery truncates
            rstate = [0]
            rstride = max(1, small_q // min(len(ups), 64))

            def _rdrive(eng, upto):
                while rstate[0] < len(ups) and rstate[0] * rstride <= upto:
                    op, u, v = ups[rstate[0]]
                    getattr(eng, op)(u, v)
                    rstate[0] += 1

            try:
                with ReaderPool(publisher.ctrl_name, readers=2) as pool:
                    for start in range(0, small_q // 2, frame):
                        _rdrive(eng, start)
                        pool.drain()
                        pool.dispatch(qitems[start:start + frame])
                    eng.flush()
                    pool.drain()
                    eng.close()  # the primary "dies" (journal survives)

                    eng = Engine.from_journal(path, cfg)
                    eng.enable_queryplane(publisher=publisher)
                    toks = {}
                    for start in range(small_q // 2, small_q, frame):
                        _rdrive(eng, start)
                        toks[pool.dispatch(qitems[start:start + frame])] \
                            = start
                    eng.flush()
                    for t, raws in pool.drain().items():
                        samples.append((*qitems[toks[t]], raws[0]))
                    rec_ok = _qp_verify(eng.snapshots, samples)
                    min_epoch = eng.snapshots.min_epoch
                    refusal = pool.query("degeneracy",
                                         pin_epoch=min_epoch - 1)
                    refused = (refusal.error is not None
                               and refusal.error["code"] == E_EPOCH_TRUNCATED)
                    rec = {
                        "ran": True,
                        "min_epoch": min_epoch,
                        "truncated": min_epoch > 0,
                        "bit_identical": rec_ok,
                        "refused_below_min": refused,
                        "ok": rec_ok and min_epoch > 0 and refused,
                    }
            finally:
                eng.close()
                publisher.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    top = max(readers)
    return {
        "num_vertices": num_vertices,
        "queries": queries,
        "updates": len(ups),
        "update_rate": update_rate,
        "frame": frame,
        "seed": seed,
        "repeats": max(1, repeats),
        "engine_wall_s": engine_wall,
        "engine_qps": engine_qps,
        "readers": pool_cells,
        "bit_identical": identical,
        "recovery": rec,
        # headline metric — what the CI smoke gate asserts against
        "speedup": pool_cells[top]["speedup"],
        "ok": (identical
               and (not recovery or bool(rec.get("ok")))),
    }


def sequential_traversal_times(
    dataset: str, batch_size: int, seed: int = 0
) -> Dict[str, float]:
    """TI/TR reference points (work units), same remove-then-insert protocol."""
    edges, batch = dataset_workload(dataset, batch_size, seed=seed)
    m = TraversalMaintainer(DynamicGraph(edges))
    tr = sum(s.work for s in m.remove_edges(batch))
    ti = sum(s.work for s in m.insert_edges(batch))
    return {"TI": ti, "TR": tr}


# ----------------------------------------------------------------------
# Table 1 / Figure 3
# ----------------------------------------------------------------------
def table1_datasets(names: Optional[Iterable[str]] = None, seed: int = 0) -> List[Dict]:
    """Stand-in graph statistics next to the paper's original Table 1."""
    rows = []
    for name in names or DATASETS:
        ds = DATASETS[name]
        g = ds.graph(seed)
        decomp = core_decomposition(g)
        rows.append(
            {
                "name": name,
                "kind": ds.kind,
                "n": g.num_vertices,
                "m": g.num_edges,
                "avg_deg": round(g.average_degree(), 2),
                "max_k": decomp.max_core,
                "paper_n": ds.paper.n,
                "paper_m": ds.paper.m,
                "paper_avg_deg": ds.paper.avg_deg,
                "paper_max_k": ds.paper.max_k,
            }
        )
    return rows


def fig3_core_distributions(
    names: Optional[Iterable[str]] = None, seed: int = 0
) -> Dict[str, Dict[int, int]]:
    """Core-number histogram per dataset (x = core value, y = #vertices)."""
    out = {}
    for name in names or DATASETS:
        g = DATASETS[name].graph(seed)
        out[name] = core_histogram(core_decomposition(g).core)
    return out


# ----------------------------------------------------------------------
# Figure 4 / Table 2
# ----------------------------------------------------------------------
def fig4_running_time(
    names: Iterable[str],
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
    batch_size: int = 1000,
    algos: Sequence[str] = ("Our", "JE", "M"),
    seed: int = 0,
    include_traversal: bool = True,
) -> Dict[str, Dict[str, Dict[int, Dict[str, float]]]]:
    """Running time by worker count, per dataset and algorithm.

    Returns ``data[dataset][algo][P] = {"insert": t, "remove": t}``.
    The sequential references appear as ``data[ds]["T"][1]`` (TI/TR) and
    the 1-worker Our run doubles as OI/OR (same work, as in the paper).
    """
    data: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for name in names:
        data[name] = {}
        for algo in algos:
            data[name][algo] = {}
            for p in worker_counts:
                cell = run_remove_insert(name, batch_size, p, algo, seed)
                data[name][algo][p] = {
                    "insert": cell["insert_makespan"],
                    "remove": cell["remove_makespan"],
                }
        if include_traversal:
            t = sequential_traversal_times(name, batch_size, seed)
            data[name]["T"] = {1: {"insert": t["TI"], "remove": t["TR"]}}
    return data


def table2_speedups(
    fig4: Dict[str, Dict[str, Dict[int, Dict[str, float]]]],
    p_hi: int = 16,
) -> List[Dict]:
    """The paper's Table 2 derived from Figure 4 data."""

    def ratio(a: float, b: float) -> float:
        return round(a / b, 1) if b else float("inf")

    rows = []
    for ds, algos in fig4.items():

        def t(algo: str, p: int, phase: str) -> float:
            return algos[algo][p][phase]

        row = {"dataset": ds}
        for algo, label in (("Our", "Our"), ("JE", "JE"), ("M", "M")):
            if algo in algos:
                row[f"{label}I 1v{p_hi}"] = ratio(
                    t(algo, 1, "insert"), t(algo, p_hi, "insert")
                )
                row[f"{label}R 1v{p_hi}"] = ratio(
                    t(algo, 1, "remove"), t(algo, p_hi, "remove")
                )
        for other in ("JE", "M"):
            if other in algos:
                row[f"OurI vs {other}I @1"] = ratio(
                    t(other, 1, "insert"), t("Our", 1, "insert")
                )
                row[f"OurR vs {other}R @1"] = ratio(
                    t(other, 1, "remove"), t("Our", 1, "remove")
                )
                row[f"OurI vs {other}I @{p_hi}"] = ratio(
                    t(other, p_hi, "insert"), t("Our", p_hi, "insert")
                )
                row[f"OurR vs {other}R @{p_hi}"] = ratio(
                    t(other, p_hi, "remove"), t("Our", p_hi, "remove")
                )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 5: |V+| distribution
# ----------------------------------------------------------------------
def fig5_locked_vertices(
    names: Iterable[str],
    batch_size: int = 1000,
    workers: int = 16,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Histogram of per-edge ``|V+|`` (== locked vertices) for OurI/OurR."""
    out: Dict[str, Dict[str, Dict[int, int]]] = {}
    for name in names:
        cell = run_remove_insert(name, batch_size, workers, "Our", seed)
        hist_i: Dict[int, int] = {}
        for s in cell["insert_stats"]:
            hist_i[len(s.v_plus)] = hist_i.get(len(s.v_plus), 0) + 1
        hist_r: Dict[int, int] = {}
        for s in cell["remove_stats"]:
            hist_r[len(s.v_plus)] = hist_r.get(len(s.v_plus), 0) + 1
        out[name] = {
            "OurI": dict(sorted(hist_i.items())),
            "OurR": dict(sorted(hist_r.items())),
        }
    return out


# ----------------------------------------------------------------------
# Figure 6: scalability in batch size
# ----------------------------------------------------------------------
def fig6_scalability(
    names: Iterable[str],
    batch_sizes: Sequence[int] = (500, 1000, 2500, 5000),
    workers: int = 16,
    algos: Sequence[str] = ("Our", "JE"),
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[int, Dict[str, float]]]]:
    """Time ratio relative to the smallest batch, per dataset/algorithm.

    Returns ``data[ds][algo][batch] = {"insert_ratio": r, "remove_ratio": r,
    "insert": t, "remove": t}``.
    """
    out: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for name in names:
        out[name] = {}
        for algo in algos:
            cells = {}
            for b in batch_sizes:
                cell = run_remove_insert(name, b, workers, algo, seed)
                cells[b] = cell
            b0 = batch_sizes[0]
            out[name][algo] = {
                b: {
                    "insert": cells[b]["insert_makespan"],
                    "remove": cells[b]["remove_makespan"],
                    "insert_ratio": cells[b]["insert_makespan"]
                    / max(cells[b0]["insert_makespan"], 1e-9),
                    "remove_ratio": cells[b]["remove_makespan"]
                    / max(cells[b0]["remove_makespan"], 1e-9),
                }
                for b in batch_sizes
            }
    return out


# ----------------------------------------------------------------------
# Figure 7: stability across disjoint batches
# ----------------------------------------------------------------------
def fig7_stability(
    names: Iterable[str],
    groups: int = 10,
    batch_size: int = 500,
    workers: int = 16,
    algos: Sequence[str] = ("Our", "JE"),
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Repeat the remove+insert experiment over disjoint edge groups and
    report per-group times plus mean/stdev/relative-spread."""
    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    for name in names:
        edges, _ = dataset_workload(name, batch_size, seed=seed)
        batches = disjoint_batches(edges, groups, batch_size, seed=seed + 7)
        out[name] = {}
        for algo in algos:
            ins_times: List[float] = []
            rem_times: List[float] = []
            for batch in batches:
                g = DynamicGraph(edges)
                m = ALGORITHMS[algo](g, workers)
                rem_times.append(m.remove_edges(batch).makespan)
                ins_times.append(m.insert_edges(batch).makespan)
            out[name][algo] = {
                "insert_times": ins_times,
                "remove_times": rem_times,
                "insert_mean": statistics.mean(ins_times),
                "insert_rel_spread": (
                    (max(ins_times) - min(ins_times))
                    / max(statistics.mean(ins_times), 1e-9)
                ),
                "remove_mean": statistics.mean(rem_times),
                "remove_rel_spread": (
                    (max(rem_times) - min(rem_times))
                    / max(statistics.mean(rem_times), 1e-9)
                ),
            }
    return out


# ----------------------------------------------------------------------
# traffic: sliding-window SLO attainment per shape (docs/traffic.md)
# ----------------------------------------------------------------------
def traffic_profile(shape: str, *, workers: int = 4, seed: int = 0,
                    backend: str = "sim") -> Dict[str, object]:
    """The bench's per-shape engine profile.  The three in-capacity
    shapes run unbounded admission with time-based cuts; ``overload``
    squeezes the ingress queue (backpressure → ``rejected``) and arms a
    small crash budget with zero retries so the ``abandoned`` terminal
    state is exercised too."""
    prof: Dict[str, object] = {
        "max_batch": 16,
        "max_delay": 256.0,
        "num_workers": workers,
        "backend": backend,
        "seed": seed,
    }
    if shape == "overload":
        from repro.faults.plane import FaultSpec

        prof.update(
            max_pending=12,
            max_retries=0,
            faults=FaultSpec(crash_rate=0.05, max_crashes=3),
        )
    return prof


def run_traffic(
    shape: str,
    *,
    ops: int = 2000,
    vertices: int = 120,
    window: Optional[float] = None,
    rate: Optional[float] = None,
    query_mix: float = 0.2,
    seed: int = 0,
    workers: int = 4,
    backend: str = "sim",
    trace_path: Optional[str] = None,
    verify_boundaries: bool = True,
    boundary_limit: Optional[int] = 8,
) -> Dict[str, object]:
    """One traffic cell: generate (or load) the shape's trace, replay it
    twice through fresh engines for the SLO numbers plus a determinism
    verdict (same trace → same cores digest, same journal digest), and —
    unless disabled — replay a lossless leg in *engine* mode
    (``EngineConfig.window``, no deadlines) that bit-compares the cores
    against a from-scratch decomposition at every window boundary and
    against the model-mode leg's final cores.

    The SLO legs replay in **model** mode: deadline = ``t + slo[class]``,
    expiry removes submitted through the same admission path as live
    traffic.  ``trace_path`` loads a pre-generated trace instead of
    generating (the CI smoke uses the bundled ``examples/traces/``)."""
    from repro.service import Engine
    from repro.traffic import Trace, generate_trace, replay

    if trace_path is not None:
        trace = Trace.load(trace_path).materialized()
    else:
        trace = generate_trace(
            shape, ops=ops, vertices=vertices, seed=seed,
            **({"window": window} if window is not None else {}),
            **({"rate": rate} if rate is not None else {}),
            query_mix=query_mix,
        )
    shape = trace.header.shape
    legs = []
    for _ in range(2):
        eng = Engine(DynamicGraph(),
                     **traffic_profile(shape, workers=workers, seed=seed,
                                       backend=backend))
        legs.append(replay(eng, trace, mode="model"))
    a, b = legs
    determinism_ok = (
        a.cores_digest == b.cores_digest
        and a.journal_digest == b.journal_digest
        and a.trace_digest == b.trace_digest
    )
    boundaries_ok = True
    engine_mode_ok = True
    boundaries: List[Dict] = []
    if verify_boundaries:
        # the oracle legs are about *window* correctness, not capacity:
        # they always run lossless (unbounded admission, no deadlines, no
        # faults) even for the overload shape, whose squeeze belongs to
        # the SLO legs above
        vprof = traffic_profile("uniform", workers=workers, seed=seed,
                                backend=backend)
        weng = Engine(DynamicGraph(), window=trace.header.window, **vprof)
        wrep = replay(weng, trace, mode="engine", slo={"update": None,
                                                       "query": None},
                      check_boundaries=True, boundary_limit=boundary_limit)
        boundaries = wrep.boundaries
        boundaries_ok = wrep.boundaries_ok
        mrep = replay(Engine(DynamicGraph(), **vprof), trace, mode="model",
                      slo={"update": None, "query": None})
        engine_mode_ok = wrep.cores_digest == mrep.cores_digest
    cell: Dict[str, object] = {
        "shape": shape,
        "mode": "model",
        "records": trace.header.ops,
        "vertices": trace.header.vertices,
        "window": trace.header.window,
        "seed": trace.header.seed,
        "trace_digest": a.trace_digest,
        "cores_digest": a.cores_digest,
        "journal_digest": a.journal_digest,
        "slo": a.slo,
        "expiry": a.expiry,
        "window_metrics": a.metrics.get("window", {}),
        "counters": a.metrics["counters"],
        "cuts": a.metrics["cuts"],
        "now": a.metrics["now"],
        "event_now": a.metrics.get("event_now", 0.0),
        "invariant_ok": a.invariant_ok and b.invariant_ok,
        "determinism_ok": determinism_ok,
        "boundaries": boundaries,
        "boundaries_ok": boundaries_ok,
        "engine_mode_ok": engine_mode_ok,
    }
    cell["ok"] = bool(
        cell["invariant_ok"] and determinism_ok
        and boundaries_ok and engine_mode_ok
    )
    return cell
