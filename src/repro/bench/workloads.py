"""Batch samplers for the dynamic-graph experiments.

Section 5.2's protocol: "For the twelve static graphs, we randomly sample
100,000 edges.  For the four temporal graphs, we select the latest
continuous period of 100,000 edges.  These edges are first removed and
then inserted."  At reproduction scale the default batch is 2,000 edges
over graphs of 10k-130k edges (same ~0.3-2% batch fraction).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.graph.datasets import DATASETS, Dataset

Edge = Tuple[int, int]

__all__ = ["sample_batch", "dataset_workload", "disjoint_batches"]


def sample_batch(edges: Sequence[Edge], size: int, seed: int = 0) -> List[Edge]:
    """Uniform random sample of ``size`` distinct edges (static graphs)."""
    if size > len(edges):
        raise ValueError(f"batch {size} larger than graph ({len(edges)} edges)")
    rng = random.Random(seed)
    return rng.sample(list(edges), size)


def latest_window(edges: Sequence[Edge], size: int) -> List[Edge]:
    """The latest contiguous window (temporal graphs; the generator
    already emits edges in timestamp order)."""
    if size > len(edges):
        raise ValueError(f"window {size} larger than stream ({len(edges)} edges)")
    return list(edges[-size:])


def dataset_workload(
    name: str, batch_size: int, seed: int = 0
) -> Tuple[List[Edge], List[Edge]]:
    """Return ``(full_edge_list, batch)`` for a dataset stand-in,
    following the static/temporal sampling split of Section 5.2."""
    ds: Dataset = DATASETS[name]
    edges = ds.edges(seed)
    if ds.kind == "temporal-sim":
        batch = latest_window(edges, batch_size)
    else:
        batch = sample_batch(edges, batch_size, seed=seed + 1)
    return edges, batch


def disjoint_batches(
    edges: Sequence[Edge], groups: int, size: int, seed: int = 0
) -> List[List[Edge]]:
    """``groups`` pairwise-disjoint batches of ``size`` edges (the Figure 7
    stability protocol: 50 groups of totally different edges)."""
    if groups * size > len(edges):
        raise ValueError("not enough edges for disjoint groups")
    rng = random.Random(seed)
    pool = rng.sample(list(edges), groups * size)
    return [pool[i * size : (i + 1) * size] for i in range(groups)]
