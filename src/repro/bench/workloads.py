"""Batch samplers for the dynamic-graph experiments.

Section 5.2's protocol: "For the twelve static graphs, we randomly sample
100,000 edges.  For the four temporal graphs, we select the latest
continuous period of 100,000 edges.  These edges are first removed and
then inserted."  At reproduction scale the default batch is 2,000 edges
over graphs of 10k-130k edges (same ~0.3-2% batch fraction).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.graph.datasets import DATASETS, Dataset

Edge = Tuple[int, int]

__all__ = [
    "sample_batch",
    "dataset_workload",
    "disjoint_batches",
    "contended_batch",
    "trace_from_edges",
    "service_trace",
    "uniform_update_trace",
]


def sample_batch(edges: Sequence[Edge], size: int, seed: int = 0) -> List[Edge]:
    """Uniform random sample of ``size`` distinct edges (static graphs)."""
    if size > len(edges):
        raise ValueError(f"batch {size} larger than graph ({len(edges)} edges)")
    rng = random.Random(seed)
    return rng.sample(list(edges), size)


def latest_window(edges: Sequence[Edge], size: int) -> List[Edge]:
    """The latest contiguous window (temporal graphs; the generator
    already emits edges in timestamp order)."""
    if size > len(edges):
        raise ValueError(f"window {size} larger than stream ({len(edges)} edges)")
    return list(edges[-size:])


def dataset_workload(
    name: str, batch_size: int, seed: int = 0
) -> Tuple[List[Edge], List[Edge]]:
    """Return ``(full_edge_list, batch)`` for a dataset stand-in,
    following the static/temporal sampling split of Section 5.2."""
    ds: Dataset = DATASETS[name]
    edges = ds.edges(seed)
    if ds.kind == "temporal-sim":
        batch = latest_window(edges, batch_size)
    else:
        batch = sample_batch(edges, batch_size, seed=seed + 1)
    return edges, batch


def disjoint_batches(
    edges: Sequence[Edge], groups: int, size: int, seed: int = 0
) -> List[List[Edge]]:
    """``groups`` pairwise-disjoint batches of ``size`` edges (the Figure 7
    stability protocol: 50 groups of totally different edges)."""
    if groups * size > len(edges):
        raise ValueError("not enough edges for disjoint groups")
    rng = random.Random(seed)
    pool = rng.sample(list(edges), groups * size)
    return [pool[i * size : (i + 1) * size] for i in range(groups)]


def contended_batch(
    name: str, size: int, hubs: int = 8, seed: int = 0
) -> Tuple[List[Edge], List[Edge]]:
    """Return ``(full_edge_list, batch)`` where the batch is deliberately
    *contended*: existing edges incident to the ``hubs`` highest-degree
    vertices of the dataset stand-in.

    Hub-incident edges share endpoints (and low-core neighborhoods), so a
    naive contiguous split hands conflicting edges to different workers
    simultaneously.  This is the workload the conflict-aware scheduler
    exists for; uniform samples (:func:`sample_batch`) barely conflict at
    reproduction scale.
    """
    ds: Dataset = DATASETS[name]
    edges = ds.edges(seed)
    degree: dict = {}
    for u, v in edges:
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    top = sorted(degree, key=lambda x: (-degree[x], x))[:hubs]
    hub_set = set(top)
    pool = [e for e in edges if e[0] in hub_set or e[1] in hub_set]
    if size > len(pool):
        raise ValueError(
            f"batch {size} larger than hub-incident pool ({len(pool)} edges)"
        )
    rng = random.Random(seed + 17)
    batch = rng.sample(pool, size)
    rng.shuffle(batch)
    return edges, batch


# ----------------------------------------------------------------------
# Serving workload (repro.service)
# ----------------------------------------------------------------------
def trace_from_edges(
    edges: Sequence[Edge],
    ops: int,
    query_rate: float = 0.25,
    seed: int = 0,
    initial_fraction: float = 0.8,
):
    """Build an interleaved insert/remove/query trace over an edge list.

    A fraction of the (deduped, canonicalized) edges forms the initial
    graph; the rest is a pool for insertions.  The trace is *sequentially
    valid*: every insert targets an absent edge, every remove a present
    one, so any divergence the serving engine reports is the engine's
    fault, not the workload's.  Queries draw from the engine's snapshot
    kinds (``core``, ``in_k_core``, ``k_shell``, ``degeneracy``,
    ``shell_histogram``).

    Returns ``(initial_edges, trace)`` where trace items are
    ``("insert", u, v)``, ``("remove", u, v)`` or
    ``("query", kind, args)``.
    """
    if not 0.0 <= query_rate <= 1.0:
        raise ValueError("query_rate must be in [0, 1]")
    from repro.graph.generators import dedupe_edges

    rng = random.Random(seed)
    pool = dedupe_edges(edges)
    if not pool:
        raise ValueError("need at least one edge to build a service trace")
    rng.shuffle(pool)
    split = max(1, int(len(pool) * initial_fraction))
    initial, absent = pool[:split], pool[split:]
    vertices = sorted({u for e in pool for u in e})
    # present-set with O(1) removal: list + index map (swap-pop)
    present = list(initial)
    index = {e: i for i, e in enumerate(present)}

    def take_present(e: Edge) -> None:
        i = index.pop(e)
        last = present.pop()
        if i < len(present):
            present[i] = last
            index[last] = i

    def add_present(e: Edge) -> None:
        index[e] = len(present)
        present.append(e)

    trace = []
    for _ in range(ops):
        r = rng.random()
        if r < query_rate or (not absent and not present):
            kind = rng.choice(
                ["core", "in_k_core", "k_shell", "degeneracy", "shell_histogram"]
            )
            if kind == "core":
                args = (rng.choice(vertices),)
            elif kind == "in_k_core":
                args = (rng.choice(vertices), rng.randint(1, 4))
            elif kind == "k_shell":
                args = (rng.randint(0, 4),)
            else:
                args = ()
            trace.append(("query", kind, args))
        elif absent and (not present or rng.random() < 0.5):
            e = absent.pop(rng.randrange(len(absent)))
            add_present(e)
            trace.append(("insert", e[0], e[1]))
        else:
            e = present[rng.randrange(len(present))]
            take_present(e)
            absent.append(e)
            trace.append(("remove", e[0], e[1]))
    return initial, trace


def uniform_update_trace(
    num_vertices: int, ops: int, seed: int = 0, remove_rate: float = 0.3
) -> List[Tuple[str, int, int]]:
    """A sequentially-valid uniform insert/remove stream over
    ``num_vertices`` integer vertices — the sharding scale-out workload.

    Endpoints are drawn uniformly, so with N shards a fraction
    ``(N-1)/N`` of the ops is cross-shard: the *worst* case for the
    sharded router's 2PC path, which makes it the honest workload for
    the scale-out speedup claim.  Every insert targets an absent edge
    and every remove (drawn with ``remove_rate`` when the edge is
    present) a present one, so a single engine and a sharded engine fed
    this trace must land on the identical final edge set.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    ops_out: List[Tuple[str, int, int]] = []
    edges = set()
    while len(ops_out) < ops:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in edges:
            if rng.random() < remove_rate:
                ops_out.append(("remove", u, v))
                edges.discard(e)
        else:
            ops_out.append(("insert", u, v))
            edges.add(e)
    return ops_out


def service_trace(
    name: str,
    ops: int,
    query_rate: float = 0.25,
    seed: int = 0,
    initial_fraction: float = 0.8,
):
    """:func:`trace_from_edges` over a registered dataset stand-in."""
    ds: Dataset = DATASETS[name]
    return trace_from_edges(
        ds.edges(seed), ops, query_rate=query_rate, seed=seed + 13,
        initial_fraction=initial_fraction,
    )
