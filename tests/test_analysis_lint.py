"""Tests for the lock-discipline lint (repro.analysis.lint)."""

import json
from pathlib import Path

from repro.analysis.lint import RULES, check_paths, check_source, main

SRC = Path(__file__).resolve().parents[1] / "src"


def rules_of(findings):
    return [f.rule for f in findings]


class TestRepoIsClean:
    def test_lint_passes_on_src(self):
        findings = check_paths([str(SRC)])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_main_exit_zero_on_src(self, capsys):
        assert main([str(SRC)]) == 0
        assert capsys.readouterr().out == ""


class TestRL001UnusedTryResult:
    def test_discarded_try_result_flagged(self):
        src = (
            "def worker(k):\n"
            "    yield ('try', k)\n"
            "    yield ('release', k)\n"
        )
        findings = check_source(src)
        assert rules_of(findings) == ["RL001"]
        assert findings[0].line == 2

    def test_consumed_try_result_clean(self):
        src = (
            "def worker(k):\n"
            "    while not (yield ('try', k)):\n"
            "        yield ('spin',)\n"
            "    yield ('release', k)\n"
        )
        assert check_source(src) == []


class TestRL002LeakedLock:
    def test_leaked_lock_pair_flagged(self):
        src = (
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    yield ('tick', 1.0)\n"
            "    yield ('release', a)\n"
        )
        findings = check_source(src)
        assert rules_of(findings) == ["RL002"]
        assert "'b'" in findings[0].message

    def test_leaked_cond_acquire_flagged(self):
        src = (
            "def worker(k):\n"
            "    got = yield from cond_acquire(k, lambda: True)\n"
            "    yield ('tick', 1.0)\n"
        )
        assert rules_of(check_source(src)) == ["RL002"]

    def test_release_all_over_lockset_variable_clean(self):
        src = (
            "def worker(a, b, c):\n"
            "    yield from lock_pair(a, b)\n"
            "    locked = {a, b}\n"
            "    got = yield from cond_acquire(c, lambda: True)\n"
            "    if got:\n"
            "        locked.add(c)\n"
            "    yield from release_all(locked)\n"
        )
        assert check_source(src) == []

    def test_lockset_never_released_carries_hint(self):
        src = (
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    locked = {a, b}\n"
            "    yield ('tick', 1.0)\n"
        )
        findings = check_source(src)
        assert rules_of(findings) == ["RL002", "RL002"]
        assert "'locked'" in findings[0].message

    def test_nested_helper_shares_enclosing_lockset(self):
        """Acquisition in a nested helper, release in the outer function
        (the OurI dequeue pattern) must not be flagged."""
        src = (
            "def worker(edges):\n"
            "    locked = set()\n"
            "    def dequeue(w):\n"
            "        got = yield from cond_acquire(w, lambda: True)\n"
            "        if got:\n"
            "            locked.add(w)\n"
            "    yield from dequeue(1)\n"
            "    yield from release_all(locked)\n"
        )
        assert check_source(src) == []


class TestRL003RawPairAcquisition:
    def test_two_raw_tries_flagged(self):
        src = (
            "def worker(a, b):\n"
            "    ok = yield ('try', a)\n"
            "    ok2 = yield ('try', b)\n"
            "    yield ('release', a)\n"
            "    yield ('release', b)\n"
        )
        assert "RL003" in rules_of(check_source(src))

    def test_single_raw_try_spin_loop_clean(self):
        src = (
            "def worker(k):\n"
            "    while not (yield ('try', k)):\n"
            "        yield ('spin',)\n"
            "    yield ('release', k)\n"
        )
        assert check_source(src) == []

    def test_lock_pair_is_the_blessed_route(self):
        src = (
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    yield from release_all([a, b])\n"
        )
        assert check_source(src) == []


class TestRL004EventShape:
    def test_unknown_kind_flagged(self):
        src = (
            "def worker(k):\n"
            "    ok = yield ('try', k)\n"
            "    yield ('lock', k)\n"
            "    yield ('release', k)\n"
        )
        assert "RL004" in rules_of(check_source(src))

    def test_wrong_arity_flagged(self):
        src = (
            "def worker(k):\n"
            "    ok = yield ('try', k)\n"
            "    yield ('tick',)\n"
            "    yield ('release', k)\n"
        )
        findings = [f for f in check_source(src) if f.rule == "RL004"]
        assert len(findings) == 1
        assert "tick" in findings[0].message

    def test_data_generators_ignored(self):
        """A generator yielding tagged data tuples is not a protocol
        worker and must not be linted."""
        src = (
            "def stream():\n"
            "    yield ('alpha', 1)\n"
            "    yield ('beta',)\n"
        )
        assert check_source(src) == []


class TestRL005AdjacencyPrivacy:
    def test_direct_adj_read_flagged(self):
        src = (
            "def degree_sum(g):\n"
            "    return sum(len(g.adj[u]) for u in g.adj)\n"
        )
        findings = [f for f in check_source(src) if f.rule == "RL005"]
        assert len(findings) == 2
        assert all(f.line == 2 for f in findings)

    def test_private_adj_write_flagged(self):
        src = (
            "def hack(g, u, v):\n"
            "    g._adj[u].append(v)\n"
        )
        assert "RL005" in rules_of(check_source(src))

    def test_self_access_is_exempt(self):
        src = (
            "class MyGraph:\n"
            "    def neighbors(self, u):\n"
            "        return self._adj[u]\n"
        )
        assert check_source(src) == []

    def test_graph_package_is_exempt(self):
        src = (
            "def kernel(g):\n"
            "    return g._adj\n"
        )
        assert check_source(src, path="src/repro/graph/intgraph.py") == []
        assert "RL005" in rules_of(
            check_source(src, path="src/repro/core/kernel.py")
        )

    def test_sanctioned_accessors_clean(self):
        src = (
            "def degree_sum(g):\n"
            "    return sum(len(nbrs) for nbrs in g.adjacency_lists())\n"
        )
        assert check_source(src) == []

    def test_pragma_suppresses(self):
        src = (
            "def copy_adj(g):\n"
            "    return dict(g._adj)  # lint: ok[RL005]\n"
        )
        assert check_source(src) == []

    def test_unrelated_attribute_named_adjacent_clean(self):
        src = (
            "def f(cfg):\n"
            "    return cfg.adjust\n"
        )
        assert check_source(src) == []


class TestPragma:
    def test_bare_pragma_suppresses(self):
        src = (
            "def worker(k):\n"
            "    yield ('try', k)  # lint: ok\n"
            "    yield ('release', k)\n"
        )
        assert check_source(src) == []

    def test_rule_scoped_pragma(self):
        src = (
            "def worker(k):\n"
            "    yield ('try', k)  # lint: ok[RL001]\n"
            "    yield ('release', k)\n"
        )
        assert check_source(src) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = (
            "def worker(k):\n"
            "    yield ('try', k)  # lint: ok[RL002]\n"
            "    yield ('release', k)\n"
        )
        assert rules_of(check_source(src)) == ["RL001"]


class TestCli:
    def _leaky(self, tmp_path):
        p = tmp_path / "leaky.py"
        p.write_text(
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    yield ('tick', 1.0)\n",
            encoding="utf-8",
        )
        return p

    def test_exit_one_on_leaky_fixture(self, tmp_path, capsys):
        assert main([str(self._leaky(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out
        assert "finding(s)" in out

    def test_json_format_machine_readable(self, tmp_path, capsys):
        assert main(["--format", "json", str(self._leaky(tmp_path))]) == 1
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) == 2
        assert set(data[0]) == {"path", "line", "col", "rule", "message"}
        assert {d["rule"] for d in data} == {"RL002"}

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def worker(:\n", encoding="utf-8")
        findings = check_paths([str(p)])
        assert rules_of(findings) == ["RL000"]

    def test_directory_recursion(self, tmp_path, capsys):
        sub = tmp_path / "pkg"
        sub.mkdir()
        self._leaky(sub)
        (sub / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1

    def test_rules_table_documented(self):
        assert set(RULES) == {"RL001", "RL002", "RL003", "RL004", "RL005"}
