"""Tests for the structural graph metrics."""

import networkx as nx
import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi, lattice
from repro.graph.metrics import (
    connected_components,
    degree_histogram,
    degree_skew,
    global_clustering,
    profile,
)


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return h


class TestDegreeStats:
    def test_histogram_total(self):
        g = DynamicGraph(erdos_renyi(40, 100, seed=1))
        hist = degree_histogram(g)
        assert sum(hist.values()) == g.num_vertices
        assert sum(d * c for d, c in hist.items()) == 2 * g.num_edges

    def test_skew_orderings(self):
        flat = DynamicGraph(lattice(12, 12))
        heavy = DynamicGraph(barabasi_albert(144, 3, seed=2))
        assert degree_skew(heavy) > degree_skew(flat)

    def test_skew_empty(self):
        assert degree_skew(DynamicGraph()) == 0.0


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        assert global_clustering(g) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        g = DynamicGraph([(0, i) for i in range(1, 8)])
        assert global_clustering(g) == 0.0

    def test_matches_networkx(self):
        g = DynamicGraph(erdos_renyi(30, 90, seed=3))
        assert global_clustering(g) == pytest.approx(
            nx.transitivity(to_nx(g)), abs=1e-9
        )

    def test_sampled_close_to_full(self):
        g = DynamicGraph(erdos_renyi(200, 800, seed=4))
        full = global_clustering(g)
        sampled = global_clustering(g, sample=100)
        assert abs(full - sampled) < 0.1


class TestComponents:
    def test_two_components(self):
        g = DynamicGraph([(0, 1), (1, 2), (10, 11)])
        assert connected_components(g) == [3, 2]

    def test_matches_networkx(self):
        g = DynamicGraph(erdos_renyi(60, 70, seed=5))
        ours = connected_components(g)
        theirs = sorted(
            (len(c) for c in nx.connected_components(to_nx(g))), reverse=True
        )
        assert ours == theirs


class TestProfile:
    def test_fields(self):
        g = DynamicGraph(erdos_renyi(50, 150, seed=6))
        p = profile(g)
        assert p.n == 50 or p.n == g.num_vertices
        assert p.m == g.num_edges
        assert 0 <= p.largest_component_frac <= 1
        row = p.row()
        assert set(row) == {
            "n", "m", "avg_deg", "max_deg", "skew",
            "clustering", "components", "lcc%",
        }

    def test_empty_graph(self):
        p = profile(DynamicGraph())
        assert p.n == 0 and p.components == 0
