"""Tests for read_edge_list strict=False (ISSUE 2 satellite): malformed
lines and self-loops are counted and skipped instead of raising."""

import pytest

from repro.graph.io import read_edge_list

MESSY = """\
# comment
% also a comment
1 2
2 3 17.5 999
3 3
oops
4
5 six
2 1

4 5
"""


@pytest.fixture
def messy_file(tmp_path):
    p = tmp_path / "messy.txt"
    p.write_text(MESSY)
    return p


class TestLenientMode:
    def test_counts_and_skips(self, messy_file):
        counters = {}
        edges = read_edge_list(messy_file, strict=False, counters=counters)
        assert edges == [(1, 2), (2, 3), (4, 5)]
        assert counters == {"kept": 4, "malformed": 3, "self_loops": 1,
                            "interner_hits": 0, "interner_misses": 0}

    def test_no_dedupe_keeps_raw_lines(self, messy_file):
        edges = read_edge_list(messy_file, strict=False, dedupe=False)
        # (2, 1) survives undeduped; the self-loop is still dropped
        assert edges == [(1, 2), (2, 3), (2, 1), (4, 5)]

    def test_counters_optional(self, messy_file):
        assert read_edge_list(messy_file, strict=False) == [
            (1, 2), (2, 3), (4, 5)
        ]


class TestStrictMode:
    def test_malformed_still_raises(self, messy_file):
        with pytest.raises((ValueError, IndexError)):
            read_edge_list(messy_file)  # strict is the default

    def test_clean_file_counters_report_zero(self, tmp_path):
        p = tmp_path / "clean.txt"
        p.write_text("1 2\n2 3\n")
        counters = {}
        edges = read_edge_list(p, counters=counters)
        assert edges == [(1, 2), (2, 3)]
        assert counters == {"kept": 2, "malformed": 0, "self_loops": 0,
                            "interner_hits": 0, "interner_misses": 0}

    def test_strict_keeps_self_loop_for_dedupe(self, tmp_path):
        # strict mode defers self-loop handling to dedupe, as before
        p = tmp_path / "loop.txt"
        p.write_text("1 1\n1 2\n")
        assert read_edge_list(p) == [(1, 2)]
        assert read_edge_list(p, dedupe=False) == [(1, 1), (1, 2)]


class TestInternerAtParseBoundary:
    def test_sparse_ids_become_dense(self, tmp_path):
        from repro.graph.interning import VertexInterner

        p = tmp_path / "sparse.txt"
        p.write_text("100 200\n200 300\n100 300\n")
        interner = VertexInterner()
        counters = {}
        edges = read_edge_list(p, counters=counters, interner=interner)
        # first-seen order: 100->0, 200->1, 300->2
        assert edges == [(0, 1), (1, 2), (0, 2)]
        assert interner.external(0) == 100
        assert interner.externals([0, 1, 2]) == [100, 200, 300]
        # 6 endpoints parsed: 3 new, 3 already interned
        assert counters["interner_misses"] == 3
        assert counters["interner_hits"] == 3

    def test_prepopulated_interner_all_hits(self, tmp_path):
        from repro.graph.interning import VertexInterner

        p = tmp_path / "known.txt"
        p.write_text("7 8\n8 9\n")
        interner = VertexInterner([7, 8, 9])
        counters = {}
        edges = read_edge_list(p, counters=counters, interner=interner)
        assert edges == [(0, 1), (1, 2)]
        assert counters["interner_hits"] == 4
        assert counters["interner_misses"] == 0

    def test_lenient_skips_do_not_touch_interner(self, messy_file):
        from repro.graph.interning import VertexInterner

        interner = VertexInterner()
        counters = {}
        read_edge_list(messy_file, strict=False, counters=counters,
                       interner=interner)
        # malformed lines and self-loops never reach the interner
        assert sorted(interner.to_list()) == [1, 2, 3, 4, 5]
        assert counters["interner_hits"] + counters["interner_misses"] == 8

    def test_interned_edges_feed_from_int_edges(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph
        from repro.graph.interning import VertexInterner

        p = tmp_path / "g.txt"
        p.write_text("10 20\n20 30\n30 10\n")
        interner = VertexInterner()
        edges = read_edge_list(p, interner=interner)
        g = DynamicGraph.from_int_edges(edges)
        assert g.num_vertices == 3 and g.num_edges == 3
