"""Tests for read_edge_list strict=False (ISSUE 2 satellite): malformed
lines and self-loops are counted and skipped instead of raising."""

import pytest

from repro.graph.io import read_edge_list

MESSY = """\
# comment
% also a comment
1 2
2 3 17.5 999
3 3
oops
4
5 six
2 1

4 5
"""


@pytest.fixture
def messy_file(tmp_path):
    p = tmp_path / "messy.txt"
    p.write_text(MESSY)
    return p


class TestLenientMode:
    def test_counts_and_skips(self, messy_file):
        counters = {}
        edges = read_edge_list(messy_file, strict=False, counters=counters)
        assert edges == [(1, 2), (2, 3), (4, 5)]
        assert counters == {"kept": 4, "malformed": 3, "self_loops": 1}

    def test_no_dedupe_keeps_raw_lines(self, messy_file):
        edges = read_edge_list(messy_file, strict=False, dedupe=False)
        # (2, 1) survives undeduped; the self-loop is still dropped
        assert edges == [(1, 2), (2, 3), (2, 1), (4, 5)]

    def test_counters_optional(self, messy_file):
        assert read_edge_list(messy_file, strict=False) == [
            (1, 2), (2, 3), (4, 5)
        ]


class TestStrictMode:
    def test_malformed_still_raises(self, messy_file):
        with pytest.raises((ValueError, IndexError)):
            read_edge_list(messy_file)  # strict is the default

    def test_clean_file_counters_report_zero(self, tmp_path):
        p = tmp_path / "clean.txt"
        p.write_text("1 2\n2 3\n")
        counters = {}
        edges = read_edge_list(p, counters=counters)
        assert edges == [(1, 2), (2, 3)]
        assert counters == {"kept": 2, "malformed": 0, "self_loops": 0}

    def test_strict_keeps_self_loop_for_dedupe(self, tmp_path):
        # strict mode defers self-loop handling to dedupe, as before
        p = tmp_path / "loop.txt"
        p.write_text("1 1\n1 2\n")
        assert read_edge_list(p) == [(1, 2)]
        assert read_edge_list(p, dedupe=False) == [(1, 1), (1, 2)]
