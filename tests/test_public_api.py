"""The public API surface promised by the README/DESIGN must exist."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_snippet():
    from repro import DynamicGraph, OrderMaintainer, erdos_renyi

    g = DynamicGraph(erdos_renyi(1000, 4000, seed=7))
    m = OrderMaintainer(g)
    if not g.has_edge(0, 999):
        m.insert_edge(0, 999)
    assert isinstance(m.core(0), int)


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        m = importlib.import_module(mod.name)
        assert m.__doc__, f"{mod.name} missing module docstring"


def test_public_classes_have_docstrings():
    from inspect import isclass, isfunction

    for name in repro.__all__:
        obj = getattr(repro, name)
        if isclass(obj) or isfunction(obj):
            assert obj.__doc__, f"repro.{name} missing docstring"
