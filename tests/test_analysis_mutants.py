"""Protocol mutants: the race detector must catch broken lock discipline.

Mutants are *event-stream wrappers* around the unmodified worker
generators: eliding a lock (granting ``try`` without acquiring, and
swallowing the matching release) is exactly what deleting the
acquisition from the code would produce, without maintaining mutated
copies of the algorithms.  Each mutant must be flagged by the detector
under a seeded random schedule on at least one seed; the unmutated
algorithms must stay race-free on every seed (the regression gate the
whole subsystem exists for).
"""

import random

import pytest

from repro.analysis import RaceDetector
from repro.analysis.trace import instrument_state
from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.parallel.batch import ParallelOrderMaintainer, partition_batch
from repro.parallel.costs import CostModel
from repro.parallel.parallel_insert import insert_worker
from repro.parallel.parallel_remove import remove_worker
from repro.parallel.runtime import SimDeadlockError, SimMachine

SEEDS = range(10)


# ----------------------------------------------------------------------
# mutants (event-stream wrappers)
# ----------------------------------------------------------------------
def elide_locks(gen):
    """Grant every ``try`` without acquiring; swallow the releases the
    worker then believes it owes.  Equivalent to deleting all locking
    from this worker's code."""
    elided = {}
    val = None
    while True:
        try:
            ev = gen.send(val)
        except StopIteration:
            return
        kind = ev[0]
        if kind == "try":
            elided[ev[1]] = elided.get(ev[1], 0) + 1
            val = True
            continue
        if kind == "release" and elided.get(ev[1], 0):
            elided[ev[1]] -= 1
            val = None
            continue
        val = yield ev


def swallow_releases(gen):
    """Drop every ``release``: the worker holds its locks forever."""
    val = None
    while True:
        try:
            ev = gen.send(val)
        except StopIteration:
            return
        if ev[0] == "release":
            val = None
            continue
        val = yield ev


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _graph_and_batch(seed, n=40, m=130, batch_size=40):
    edges = erdos_renyi(n, m, seed=seed)
    return edges[:-batch_size], edges[-batch_size:]


def _run_mutated(
    worker_factory, base, batch, seed, mutate, inserting,
    catch=(Exception,), **mk,
):
    """Run one mutated batch under a random schedule; return the race
    report.  Crashes in ``catch`` are tolerated — a mutant may corrupt
    state (or deadlock downstream workers) after the detector has
    already recorded the races online."""
    state = OrderState.from_graph(DynamicGraph(base))
    det = RaceDetector()
    instrument_state(state, det)
    if inserting:
        for u, v in batch:
            state.ensure_vertex(u)
            state.ensure_vertex(v)
    chunks = partition_batch(batch, 4)
    outs = [[] for _ in chunks]
    bodies = [
        worker_factory(state, chunk, CostModel(), out)
        for chunk, out in zip(chunks, outs)
    ]
    bodies[0] = mutate(bodies[0])
    machine = SimMachine(
        4, schedule="random", seed=seed, detector=det, **mk
    )
    try:
        machine.run(bodies)
    except catch:
        pass
    return det.report()


class TestMutantsAreFlagged:
    def test_lock_elision_in_insertion_races(self):
        flagged = []
        for seed in SEEDS:
            base, batch = _graph_and_batch(seed)
            rep = _run_mutated(
                insert_worker, base, batch, seed, elide_locks, inserting=True
            )
            flagged.append(not rep.ok)
        assert any(flagged), (
            "eliding all locks from one insertion worker was never "
            "flagged as a race on any seed"
        )

    def test_lock_elision_in_removal_races(self):
        flagged = []
        for seed in SEEDS:
            edges = erdos_renyi(40, 150, seed=100 + seed)
            base, batch = edges, edges[-45:]
            rep = _run_mutated(
                remove_worker, base, batch, seed, elide_locks, inserting=False
            )
            flagged.append(not rep.ok)
        assert any(flagged)

    def test_race_report_names_algorithm_sites(self):
        """A flagged mutant points at real algorithm lines, not at the
        instrumentation plumbing."""
        for seed in SEEDS:
            base, batch = _graph_and_batch(seed)
            rep = _run_mutated(
                insert_worker, base, batch, seed, elide_locks, inserting=True
            )
            if rep.races:
                r = rep.races[0]
                for site in (r.a.site, r.b.site):
                    assert "analysis" not in site, site
                    assert ":" in site
                return
        pytest.fail("no seed produced a race to inspect")

    def test_swallowed_releases_halt_the_machine(self):
        """A worker that never releases is caught by the runtime itself:
        either it re-acquires a lock it silently kept (protocol error) or
        the machine reports deadlock/livelock — never a silent pass.
        (:class:`SimDeadlockError` subclasses RuntimeError, so both
        diagnoses are covered.)"""
        base, batch = _graph_and_batch(0)
        with pytest.raises(RuntimeError) as ei:
            for seed in SEEDS:
                _run_mutated(
                    insert_worker, base, batch, seed, swallow_releases,
                    inserting=True, catch=(), max_stall_events=3000,
                )
        assert "lock" in str(ei.value)


class TestCleanRunsStayClean:
    def test_parallel_insert_remove_zero_races_across_seeds(self):
        """ISSUE acceptance: OurI/OurR race-free on >= 10 random-schedule
        seeds, with cores still correct."""
        for seed in SEEDS:
            edges = erdos_renyi(40, 130, seed=200 + seed)
            base, batch = edges[:-40], edges[-40:]
            det = RaceDetector()
            m = ParallelOrderMaintainer(
                DynamicGraph(base),
                num_workers=4,
                schedule="random",
                seed=seed,
                detector=det,
            )
            m.insert_edges(batch)
            m.remove_edges(batch[:15])
            m.check()
            rep = det.report()
            assert rep.ok, f"seed {seed}:\n{rep.format()}"
            assert rep.accesses_traced > 0
            assert rep.relaxed_accesses > 0
            assert rep.sync_ops > 0

    def test_threaded_backend_zero_races(self):
        from repro.parallel.threads import ThreadedOrderMaintainer

        for seed in range(3):
            edges = erdos_renyi(30, 90, seed=300 + seed)
            base, batch = edges[:-25], edges[-25:]
            det = RaceDetector()
            m = ThreadedOrderMaintainer(
                DynamicGraph(base), num_workers=4, detector=det
            )
            m.insert_edges(batch)
            m.remove_edges(batch[:10])
            m.check()
            rep = det.report()
            assert rep.ok, f"seed {seed}:\n{rep.format()}"
            assert rep.accesses_traced > 0

    def test_detector_overhead_is_opt_in(self):
        """Without a detector nothing is wrapped or traced."""
        from repro.analysis.trace import TracedDict, TracedSlotMap

        edges = erdos_renyi(30, 90, seed=7)
        m = ParallelOrderMaintainer(DynamicGraph(edges[:-20]), num_workers=4)
        assert m.detector is None
        assert not isinstance(m.state.d_out, (TracedDict, TracedSlotMap))
        assert not isinstance(m.state.korder.core, (TracedDict, TracedSlotMap))
        assert m.state.trace is None and m.state.korder.trace is None
        m.insert_edges(edges[-20:])
        m.check()
