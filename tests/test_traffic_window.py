"""The engine's sliding-window expiry plane (ISSUE 10 tentpole) and the
sustained-overload backpressure satellite: arming at commit, inclusive
firing on the event clock, CANCEL/annihilation bookkeeping, rebuffering
under backpressure, restart re-arming, and the accounting invariant
``admitted == committed + quarantined + timed_out + abandoned`` under a
trace that exceeds ingress capacity."""

import pytest

from repro.bench.harness import run_traffic, traffic_profile
from repro.faults.plane import FaultSpec
from repro.graph.dynamic_graph import DynamicGraph
from repro.service import Engine, EngineConfig, Request
from repro.service.sharding import ShardedEngine
from repro.traffic import generate_trace, replay


def windowed(window=100.0, **kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("max_delay", None)
    return Engine(DynamicGraph(), window=window, **kw)


class TestConfig:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            EngineConfig(window=0.0)
        with pytest.raises(ValueError, match="window"):
            EngineConfig(window=-5.0)

    def test_sharded_engine_rejects_window(self):
        with pytest.raises(ValueError, match="monolithic"):
            ShardedEngine(DynamicGraph(),
                          EngineConfig(shards=2, window=100.0))

    def test_windowless_engine_has_inert_plane(self):
        eng = Engine(DynamicGraph(), max_batch=2)
        eng.insert(0, 1)
        eng.flush()
        eng.advance_to(1e9)
        eng.flush()
        assert eng.expiries_armed() == 0
        assert sorted(eng.graph.edges()) == [(0, 1)]


class TestExpiryLifecycle:
    def test_commit_arms_at_arrival_plus_window(self):
        eng = windowed(window=100.0)
        eng.advance_to(10.0)
        eng.insert(0, 1)
        eng.flush()
        assert eng.expiries_armed() == 1
        eng.advance_to(109.0)  # due is 110: not yet
        eng.flush()
        assert sorted(eng.graph.edges()) == [(0, 1)]
        eng.advance_to(110.0)  # inclusive: due <= event_now fires
        eng.drain_window()
        assert list(eng.graph.edges()) == []
        assert eng.expiries_armed() == 0

    def test_event_clock_is_monotonic(self):
        eng = windowed()
        eng.advance_to(50.0)
        eng.advance_to(20.0)
        assert eng.event_now == 50.0

    def test_live_remove_disarms(self):
        eng = windowed(window=100.0)
        eng.insert(0, 1)
        eng.flush()
        assert eng.expiries_armed() == 1
        eng.remove(0, 1)
        eng.flush()
        assert eng.expiries_armed() == 0
        eng.advance_to(1e9)
        eng.drain_window()
        m = eng.metrics()["window"]
        assert m["fired"] == 0  # nothing left to expire

    def test_expiry_requests_carry_reserved_id(self):
        eng = windowed(window=10.0, max_batch=1)
        eng.advance_to(0.0)
        eng.insert(0, 1)
        eng.flush()
        eng.advance_to(20.0)
        done = eng.drain_window()
        exp = [r for r in done if (r.id or "").startswith("exp:")]
        assert len(exp) == 1 and exp[0].status == "committed"

    def test_pending_annihilation_rearms(self):
        """insert committed, then pending remove+insert annihilate: the
        edge stays present and its expiry is re-armed from the CANCEL
        point, not lost."""
        eng = windowed(window=100.0, max_batch=16)
        eng.advance_to(0.0)
        eng.insert(0, 1)
        eng.flush()
        eng.advance_to(30.0)
        eng.remove(0, 1)   # pending
        eng.insert(0, 1)   # annihilates the pending remove
        eng.flush()
        assert sorted(eng.graph.edges()) == [(0, 1)]
        assert eng.expiries_armed() == 1
        eng.advance_to(101.0)  # original due (100) is void
        eng.flush()
        assert sorted(eng.graph.edges()) == [(0, 1)]
        eng.advance_to(130.0)  # re-armed due: CANCEL point + window
        eng.drain_window()
        assert list(eng.graph.edges()) == []

    def test_pending_insert_annihilated_never_arms(self):
        eng = windowed(window=100.0, max_batch=16)
        eng.insert(0, 1)   # pending
        eng.remove(0, 1)   # annihilates it
        eng.flush()
        assert eng.expiries_armed() == 0
        assert list(eng.graph.edges()) == []

    def test_metrics_window_accounting(self):
        eng = windowed(window=10.0, max_batch=2)
        eng.advance_to(0.0)
        for i in range(4):
            eng.insert(i, i + 1)
        eng.flush()
        eng.advance_to(100.0)
        eng.drain_window()
        m = eng.metrics()
        assert m["event_now"] == 100.0
        assert m["window"]["scheduled"] == 4
        assert m["window"]["fired"] == 4
        assert m["window"]["armed"] == 0

    def test_drain_window_catches_cascading_expiries(self):
        """Edges inserted at different times all expire in one drain even
        though later dues are armed while earlier ones are being
        removed."""
        eng = windowed(window=50.0, max_batch=1)
        for i in range(5):
            eng.advance_to(10.0 * i)
            eng.insert(i, i + 1)
        eng.flush()
        eng.advance_to(1000.0)
        eng.drain_window()
        assert list(eng.graph.edges()) == []


class TestBackpressureAndRestart:
    def test_rejected_expiry_is_rebuffered_not_lost(self):
        eng = Engine(DynamicGraph(), window=10.0, max_batch=4,
                     max_delay=None, max_pending=2)
        eng.advance_to(0.0)
        eng.insert(0, 1)
        eng.flush()
        # jam the ingress queue so the fired expiry gets rejected
        eng.submit(Request("insert", u=5, v=6))
        eng.submit(Request("insert", u=6, v=7))
        eng.advance_to(20.0)
        m = eng.metrics()["window"]
        assert m["rebuffered"] >= 1
        assert eng.expiries_armed() >= 1  # re-armed, still owed
        eng.drain_window()  # drains the jam; the retry is not due yet
        eng.advance_to(20.0 + eng.config.retry_backoff)  # backoff elapses
        eng.drain_window()
        assert (0, 1) not in set(eng.graph.edges())
        assert eng.metrics()["window"]["fired"] >= 1

    def test_restart_rearms_committed_edges(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        cfg = EngineConfig(window=100.0, max_batch=4, max_delay=None,
                           journal_path=path)
        eng = Engine(DynamicGraph(), cfg)
        eng.advance_to(5.0)
        eng.insert(0, 1)
        eng.insert(1, 2)
        eng.flush()
        assert eng.expiries_armed() == 2
        eng.close()
        # the WAL does not journal the expiry schedule: the restarted
        # engine grants every surviving edge a fresh window
        back = Engine.from_journal(path, EngineConfig(
            window=100.0, max_batch=4, max_delay=None))
        assert back.expiries_armed() == 2
        back.advance_to(back.event_now + 100.0)
        back.drain_window()
        assert list(back.graph.edges()) == []
        back.close()

    def test_restart_resumes_expiry_id_sequence(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        cfg = EngineConfig(window=10.0, max_batch=1, max_delay=None,
                           journal_path=path)
        eng = Engine(DynamicGraph(), cfg)
        eng.advance_to(0.0)
        eng.insert(0, 1)
        eng.flush()
        eng.advance_to(50.0)
        eng.drain_window()  # journal now holds an exp:0 remove
        eng.insert(2, 3)
        eng.flush()
        eng.close()
        back = Engine.from_journal(path, EngineConfig(
            window=10.0, max_batch=1, max_delay=None))
        back.advance_to(back.event_now + 10.0)
        done = back.drain_window()
        exp = [r.id for r in done if (r.id or "").startswith("exp:")]
        assert exp and all(int(i.split(":")[1]) >= 1 for i in exp)
        back.close()


class TestOverloadBackpressure:
    """The sustained-overload satellite: a trace beyond ingress capacity
    must shed load through the structured terminal states while the
    accounting invariant holds exactly."""

    def test_invariant_under_overload(self):
        trace = generate_trace("overload", ops=600, vertices=80, seed=3)
        eng = Engine(DynamicGraph(), max_batch=16, max_delay=256.0,
                     max_pending=12, max_retries=0, seed=3,
                     faults=FaultSpec(crash_rate=0.05, max_crashes=3))
        rep = replay(eng, trace, mode="model")
        c = rep.metrics["counters"]
        assert c["admitted"] == (c["committed"] + c["quarantined"]
                                 + c["timed_out"] + c["abandoned"])
        assert c["in_flight"] == 0
        assert c["rejected"] > 0        # backpressure actually bit
        assert c["abandoned"] > 0       # zero-retry crashes abandoned
        assert rep.invariant_ok
        s = rep.slo["update"]
        assert s["rejected"] == c["rejected"]
        assert s["hit_rate"] < 1.0

    def test_bench_overload_cell_is_ok(self):
        cell = run_traffic("overload", ops=400, vertices=60, seed=7,
                           verify_boundaries=False)
        assert cell["ok"]
        assert cell["counters"]["rejected"] > 0

    def test_profile_shapes(self):
        prof = traffic_profile("overload")
        assert prof["max_pending"] == 12 and prof["max_retries"] == 0
        assert "max_pending" not in traffic_profile("uniform")
