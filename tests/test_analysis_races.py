"""Unit tests for the lockset / happens-before race detector."""

import pytest

from repro.analysis import RaceDetector
from repro.analysis.trace import TracedDict, instrument_state
from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.runtime import SimMachine


def run2(*bodies, detector=None):
    return SimMachine(len(bodies), detector=detector).run(list(bodies))


def writer(loc, site):
    yield ("write", loc, site)
    yield ("tick", 1.0)


def reader(loc, site):
    yield ("read", loc, site)
    yield ("tick", 1.0)


class TestConflicts:
    def test_unsynchronized_write_write_is_a_race(self):
        det = RaceDetector()
        run2(writer(("x", 1), "a.py:1"), writer(("x", 1), "b.py:2"), detector=det)
        rep = det.report()
        assert not rep.ok
        assert len(rep.races) == 1
        r = rep.races[0]
        assert r.loc == ("x", 1)
        assert {r.a.site, r.b.site} == {"a.py:1", "b.py:2"}
        assert not r.common_lockset
        assert "data race" in r.describe()

    def test_unsynchronized_read_write_is_a_race(self):
        det = RaceDetector()
        run2(reader(("x", 1), "a.py:1"), writer(("x", 1), "b.py:2"), detector=det)
        assert len(det.report().races) == 1

    def test_read_read_is_not_a_race(self):
        det = RaceDetector()
        run2(reader(("x", 1), "a.py:1"), reader(("x", 1), "b.py:2"), detector=det)
        assert det.report().ok

    def test_different_locations_do_not_conflict(self):
        det = RaceDetector()
        run2(writer(("x", 1), "a.py:1"), writer(("x", 2), "b.py:2"), detector=det)
        assert det.report().ok

    def test_race_carries_step_and_locksets(self):
        det = RaceDetector()
        run2(writer(("x", 1), "a.py:1"), writer(("x", 1), "b.py:2"), detector=det)
        r = det.report().races[0]
        assert r.b.step >= r.a.step >= 0
        assert isinstance(r.a.lockset, frozenset)

    def test_duplicate_pairs_reported_once(self):
        def many(site):
            for _ in range(5):
                yield ("write", ("x", 1), site)
                yield ("tick", 1.0)

        det = RaceDetector()
        run2(many("a.py:1"), many("b.py:2"), detector=det)
        # same (loc kind, sites, ops) pair: one report, not 25
        assert len(det.report().races) <= 2  # a-vs-b and b-vs-a orderings


class TestSuppressions:
    def test_common_lock_suppresses(self):
        def locked_writer(site):
            while not (yield ("try", "L")):
                yield ("spin",)
            yield ("write", ("x", 1), site)
            yield ("release", "L")

        det = RaceDetector()
        run2(locked_writer("a.py:1"), locked_writer("b.py:2"), detector=det)
        rep = det.report()
        assert rep.ok
        assert rep.sync_ops == 4

    def test_release_acquire_orders_accesses(self):
        """An access before a release happens-before accesses after the
        next acquire of the same lock — even when the access itself is
        outside the critical section."""

        def first():
            yield ("write", ("x", 1), "a.py:1")
            yield ("try", "H")  # lint: ok[RL001]
            yield ("release", "H")

        def second():
            yield ("tick", 5.0)  # run after first under min-clock
            while not (yield ("try", "H")):
                yield ("spin",)
            yield ("release", "H")
            yield ("write", ("x", 1), "b.py:2")

        det = RaceDetector()
        run2(first(), second(), detector=det)
        assert det.report().ok

    def test_disjoint_locks_do_not_suppress(self):
        def locked_writer(lock, site):
            while not (yield ("try", lock)):
                yield ("spin",)
            yield ("write", ("x", 1), site)
            yield ("release", lock)

        det = RaceDetector()
        run2(locked_writer("L1", "a.py:1"), locked_writer("L2", "b.py:2"),
             detector=det)
        assert len(det.report().races) == 1

    def test_relaxed_access_never_races(self):
        # feed relaxed accesses directly through the API: begin + manual
        # worker attribution
        det = RaceDetector()
        det.begin(2)
        det.current = 0
        det.write(("x", 1), relaxed=True)
        det.current = 1
        det.write(("x", 1), relaxed=True)
        det.write(("x", 1), site="b.py:2")  # plain vs earlier relaxed
        det.current = None
        rep = det.report()
        assert rep.ok
        assert rep.relaxed_accesses == 2
        assert rep.accesses_traced == 3

    def test_same_worker_never_races_with_itself(self):
        def w():
            yield ("write", ("x", 1), "a.py:1")
            yield ("tick", 1.0)
            yield ("write", ("x", 1), "a.py:2")

        det = RaceDetector()
        run2(w(), detector=det)
        assert det.report().ok


class TestPlumbing:
    def test_access_outside_run_ignored(self):
        det = RaceDetector()
        det.write(("x", 1))  # no begin, no current worker
        assert det.report().accesses_traced == 0

    def test_same_site_pair_deduped_across_location_family(self):
        """100 vertices racing through the same statement pair is one
        logical bug — one report."""

        def many(site):
            for i in range(100):
                yield ("write", ("x", i), site)
                yield ("tick", 1.0)

        det = RaceDetector()
        run2(many("a.py:1"), many("b.py:2"), detector=det)
        assert len(det.report().races) == 1

    def test_max_races_caps_reports(self):
        def many(tag):
            for i in range(100):
                yield ("write", ("x", i), f"{tag}:{i}")
                yield ("tick", 1.0)

        det = RaceDetector(max_races=3)
        run2(many("a.py"), many("b.py"), detector=det)
        assert len(det.report().races) == 3

    def test_counters_shape(self):
        det = RaceDetector()
        run2(writer(("x", 1), "a.py:1"), writer(("x", 1), "b.py:2"), detector=det)
        c = det.report().counters()
        assert set(c) == {
            "races", "accesses_traced", "relaxed_accesses", "sync_ops",
            "locations", "fault_events",
        }
        assert c["races"] == 1
        assert c["locations"] == 1

    def test_format_lists_races(self):
        det = RaceDetector()
        run2(writer(("x", 1), "a.py:1"), writer(("x", 1), "b.py:2"), detector=det)
        text = det.report().format()
        assert "1 race(s)" in text
        assert "a.py:1" in text


class TestTracedState:
    def _state(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        return OrderState.from_graph(g)

    def test_instrument_state_wraps_dicts(self):
        state = self._state()
        det = RaceDetector()
        instrument_state(state, det)
        assert isinstance(state.d_out, TracedDict)
        assert isinstance(state.mcd, TracedDict)
        assert isinstance(state.korder.core, TracedDict)
        assert state.trace is det
        assert state.korder.trace is det

    def test_instrument_state_idempotent(self):
        state = self._state()
        det = RaceDetector()
        instrument_state(state, det)
        d_out = state.d_out
        instrument_state(state, det)
        assert state.d_out is d_out  # not re-wrapped

    def test_traced_dict_records_attributed_accesses(self):
        state = self._state()
        det = RaceDetector()
        instrument_state(state, det)
        det.begin(1)
        det.current = 0
        _ = state.d_out[0]
        state.d_out[0] = 3
        _ = state.mcd.get(1)
        assert 2 in state.korder.core
        det.current = None
        assert det.report().accesses_traced == 4

    def test_traced_dict_silent_without_worker(self):
        """Sequential access (prologue, invariant checks) is not traced."""
        state = self._state()
        det = RaceDetector()
        instrument_state(state, det)
        det.begin(1)
        _ = state.d_out[0]
        state.check_invariants()
        assert det.report().accesses_traced == 0

    def test_wipes_are_relaxed(self):
        state = self._state()
        det = RaceDetector()
        instrument_state(state, det)
        det.begin(2)
        det.current = 0
        state.d_out_wipe(1)
        state.mcd_wipe(1)
        det.current = 1
        state.d_out_wipe(1)
        det.current = None
        rep = det.report()
        assert rep.ok
        assert rep.relaxed_accesses == 3
