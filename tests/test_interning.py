"""Property tests for vertex interning (PR 3 tentpole).

The interner is the single translation point between arbitrary hashable
external ids and the dense int ids every array-backed structure indexes
by, so its stability rules — first-seen order, ids never reused or
remapped, remove/re-add preserves the id — are load-bearing for the
whole representation layer.  Hypothesis drives them directly here and
through the :class:`DynamicGraph` wrapper.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.interning import VertexInterner

# Hashables of mixed type: ints (possibly colliding with assigned ids),
# strings, and tuples.  Ints and their string forms never compare equal,
# so mixing is safe for dict keys.
hashables = st.one_of(
    st.integers(min_value=-5, max_value=30),
    st.text(alphabet="abcxyz", min_size=1, max_size=3),
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
)


def first_seen(xs):
    seen, order = set(), []
    for x in xs:
        if x not in seen:
            seen.add(x)
            order.append(x)
    return order


class TestRoundTrip:
    @given(st.lists(hashables, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_ids_are_dense_first_seen_and_stable(self, xs):
        it = VertexInterner()
        ids = it.intern_many(xs)
        order = first_seen(xs)
        # dense id space, one id per distinct external
        assert len(it) == len(order)
        assert sorted(set(ids)) == list(range(len(order)))
        # first-seen order assigns ids 0, 1, 2, ...
        assert it.to_list() == order
        for x, i in zip(xs, ids):
            assert it.lookup(x) == i
            assert it.external(i) == x
        # re-interning everything is a no-op on the mapping
        assert it.intern_many(xs) == ids
        assert len(it) == len(order)

    @given(st.lists(hashables, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_serialization_preserves_ids(self, xs):
        it = VertexInterner(xs)
        clone = VertexInterner.from_list(it.to_list())
        assert clone.to_list() == it.to_list()
        for x in xs:
            assert clone.lookup(x) == it.lookup(x)
        assert clone.identity == it.identity

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_identity_flag_tracks_regime(self, xs):
        it = VertexInterner(xs)
        expected = all(x == i for i, x in enumerate(it.to_list()))
        assert it.identity == expected


# One operation of a random graph history: (kind, u, v).
ops = st.lists(
    st.tuples(
        st.sampled_from(["add_edge", "remove_edge", "remove_vertex", "add_vertex"]),
        hashables,
        hashables,
    ),
    max_size=50,
)


class TestRemoveReAddThroughGraph:
    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_wrapper_matches_dict_substrate(self, history):
        """Same random insert/remove/re-add history on both substrates
        ends with the same vertex set, edge set and degrees — and every
        external id keeps the int id it was first assigned."""
        dg = DynamicGraph()
        ref = DictGraph()
        assigned = {}
        for kind, u, v in history:
            if kind == "add_vertex":
                dg.add_vertex(u)
                ref.add_vertex(u)
            elif kind == "add_edge":
                if u == v or ref.has_vertex(u) and ref.has_edge(u, v):
                    continue
                dg.add_edge(u, v)
                ref.add_edge(u, v)
            elif kind == "remove_edge":
                if not (ref.has_vertex(u) and ref.has_edge(u, v)):
                    continue
                dg.remove_edge(u, v)
                ref.remove_edge(u, v)
            else:  # remove_vertex
                if not ref.has_vertex(u):
                    continue
                dg.remove_vertex(u)
                ref.remove_vertex(u)
            for x in (u, v):
                if x in dg.interner:
                    i = dg.interner.lookup(x)
                    assert assigned.setdefault(x, i) == i, (
                        f"id of {x!r} was remapped"
                    )
        assert sorted(dg.vertices(), key=repr) == sorted(
            ref.vertices(), key=repr
        )
        dg_edges = {frozenset(e) for e in dg.edges()}
        ref_edges = {frozenset(e) for e in ref.edges()}
        assert dg_edges == ref_edges
        for x in ref.vertices():
            assert dg.degree(x) == ref.degree(x)

    def test_remove_readd_same_id(self):
        g = DynamicGraph([("a", "b"), ("b", "c")])
        ib = g.interner.lookup("b")
        g.remove_vertex("b")
        assert not g.has_vertex("b")
        g.add_vertex("b")
        assert g.interner.lookup("b") == ib
        assert g.degree("b") == 0
        g.add_edge("b", "a")
        assert g.has_edge("a", "b")
