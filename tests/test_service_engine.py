"""Tests for the serving engine (repro.service.engine): admission
control, quarantine, deadlines, adaptive cuts, metrics accounting, and
the snapshot-isolation acceptance criterion."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.service import Engine, EngineConfig, Request


def triangle():
    return DynamicGraph([(0, 1), (1, 2), (0, 2)])


def invariant(metrics):
    c = metrics["counters"]
    return c["admitted"] == c["committed"] + c["quarantined"] + c["timed_out"]


class TestQuarantine:
    def test_self_loop(self):
        eng = Engine(triangle())
        r = eng.insert(4, 4)
        assert r.status == "quarantined" and r.error["code"] == "self-loop"

    def test_insert_existing_and_remove_missing(self):
        eng = Engine(triangle())
        r = eng.insert(0, 1)
        assert r.status == "quarantined" and r.error["code"] == "edge-exists"
        r = eng.remove(5, 6)
        assert r.status == "quarantined" and r.error["code"] == "edge-missing"

    def test_duplicate_request_id(self):
        eng = Engine(triangle())
        assert eng.insert(0, 3, id="x").status == "pending"
        r = eng.insert(1, 3, id="x")
        assert r.status == "quarantined" and r.error["code"] == "duplicate-id"

    def test_unknown_query_kind_and_vertex(self):
        eng = Engine(triangle())
        r = eng.query("frobnicate")
        assert r.status == "quarantined" and r.error["code"] == "unknown-query"
        r = eng.query("core", 99)
        assert r.status == "quarantined" and r.error["code"] == "unknown-vertex"

    def test_bad_op_and_bad_args(self):
        eng = Engine(triangle())
        assert eng.submit(Request("frob")).error["code"] == "bad-request"
        r = eng.query("core")  # missing argument
        assert r.status == "quarantined" and r.error["code"] == "bad-request"
        assert invariant(eng.metrics())


class TestAdmissionControl:
    def test_backpressure_rejects_without_admitting(self):
        eng = Engine(DynamicGraph(), max_pending=2, max_batch=100)
        assert eng.insert(0, 1).status == "pending"
        assert eng.insert(1, 2).status == "pending"
        r = eng.insert(2, 3)
        assert r.status == "rejected" and r.error["code"] == "backpressure"
        m = eng.metrics()["counters"]
        assert m["rejected"] == 1 and m["admitted"] == 2
        # draining frees capacity
        eng.flush()
        assert eng.insert(2, 3).status == "pending"

    def test_queries_bypass_backpressure(self):
        eng = Engine(triangle(), max_pending=1, max_batch=100)
        eng.insert(0, 3)
        assert eng.query("degeneracy").status == "committed"


class TestDeadlines:
    def test_expired_at_admission(self):
        eng = Engine(triangle(), ingest_cost=1.0)
        eng.insert(0, 3)  # advances the clock
        r = eng.insert(1, 3, deadline=0.5)
        assert r.status == "timed_out" and r.error["code"] == "deadline-exceeded"

    def test_expired_before_cut_is_partial_failure(self):
        eng = Engine(triangle(), max_batch=100, ingest_cost=10.0)
        # deadline 15 survives its own admission (now=10) but the clock
        # is at 20 by the time the batch is cut
        eng.insert(0, 3, id="late", timeout=15.0)
        eng.insert(1, 3, id="ok")
        done = {r.id: r for r in eng.flush()}
        assert done["late"].status == "timed_out"
        assert done["ok"].status == "committed"
        # the timed-out op was never applied
        assert not eng.graph.has_edge(0, 3)
        assert eng.graph.has_edge(1, 3)
        assert invariant(eng.metrics())

    def test_query_deadline(self):
        eng = Engine(triangle(), query_cost=5.0)
        assert eng.query("degeneracy", deadline=1.0).status == "timed_out"
        assert eng.query("degeneracy", timeout=50.0).status == "committed"


class TestCoalescing:
    def test_duplicate_insert_coalesces_both_commit(self):
        eng = Engine(triangle(), max_batch=100)
        a = eng.insert(0, 3, id="a")
        b = eng.insert(3, 0, id="b")  # same canonical edge
        assert a.status == "pending" and b.status == "pending"
        assert b.detail == "coalesced"
        assert eng.pending_ops() == 1
        done = {r.id: r.status for r in eng.flush()}
        assert done == {"a": "committed", "b": "committed"}
        assert eng.metrics()["counters"]["coalesced"] == 1

    def test_opposite_op_cancels_pair(self):
        eng = Engine(triangle(), max_batch=100)
        eng.insert(0, 3, id="i")
        r = eng.remove(3, 0, id="r")
        assert r.status == "committed" and r.detail == "cancelled"
        assert eng.pending_ops() == 0
        partner = {x.id: x for x in eng.take_completed()}
        assert partner["i"].status == "committed"
        assert partner["i"].detail == "cancelled"
        assert not eng.graph.has_edge(0, 3)
        assert invariant(eng.metrics())


class TestAdaptiveCuts:
    def test_size_cut(self):
        eng = Engine(DynamicGraph(), max_batch=3)
        eng.insert(0, 1), eng.insert(1, 2), eng.insert(2, 3)
        assert eng.pending_ops() == 0
        assert eng.graph.num_edges == 3
        assert eng.metrics()["cuts"]["size"] == 1

    def test_conflict_cut(self):
        eng = Engine(triangle(), max_batch=100)
        eng.insert(0, 3)
        eng.remove(0, 1)  # opposite kind, fresh edge -> cuts the insert run
        assert eng.graph.has_edge(0, 3)
        assert eng.pending_ops() == 1
        assert eng.metrics()["cuts"]["conflict"] == 1

    def test_time_cut(self):
        eng = Engine(DynamicGraph(), max_batch=100, max_delay=15.0,
                     ingest_cost=10.0)
        eng.insert(0, 1)                  # queued at now=10
        eng.insert(1, 2)
        assert eng.pending_ops() == 2     # age 10, under the bound
        eng.insert(2, 3)                  # age 20 >= 15 -> time cut fires
        assert eng.pending_ops() == 0
        assert eng.metrics()["cuts"]["time"] == 1

    def test_pressure_cut_bounds_staleness(self):
        eng = Engine(triangle(), max_batch=100, query_pressure=3)
        eng.insert(0, 3)
        assert eng.query("degeneracy").epoch == 0
        assert eng.query("degeneracy").epoch == 0
        third = eng.query("degeneracy")    # hits the pressure bound
        assert third.epoch == 0            # answered before the cut
        assert eng.pending_ops() == 0
        assert eng.metrics()["cuts"]["pressure"] == 1
        assert eng.query("core", 3).epoch == 1


class TestSnapshotIsolation:
    def test_query_mid_epoch_returns_previous_epoch_bounded_latency(self):
        """Acceptance criterion: a query issued while a long-running batch
        is pending answers with the previous epoch's values and bounded
        (query-cost-only) latency — it never blocks on the batch."""
        base = erdos_renyi(80, 200, seed=3)
        eng = Engine(DynamicGraph(base), max_batch=10_000, query_cost=5.0)
        before = eng.cores()
        # inject a long-running batch: hundreds of pending insertions
        pending = [
            (u, v)
            for u in range(80)
            for v in range(u + 1, 80)
            if not eng.graph.has_edge(u, v)
        ][:400]
        for u, v in pending:
            eng.insert(u, v)
        assert eng.pending_ops() == 400
        t0 = eng.now
        r = eng.query("core", 0)
        # bounded latency: exactly the query cost, independent of the batch
        assert r.latency == 5.0
        assert eng.now - t0 == 5.0
        # correct pre-batch answer at the committed epoch
        assert r.epoch == 0 and r.value == before[0]
        assert eng.query("cores").value == before
        # the flush is what pays the makespan, not the queries
        eng.flush()
        makespan = eng.metrics()["sim"]["makespan"]
        assert makespan > 100 * 5.0
        assert eng.epoch == 1
        after = eng.query("core", 0)
        assert after.epoch == 1 and after.value >= before[0]

    def test_old_views_stay_answerable(self):
        eng = Engine(triangle(), max_batch=1)
        eng.insert(0, 3)
        eng.insert(1, 3)
        eng.insert(2, 3)
        assert eng.epoch == 3
        assert eng.view(0).core(3) is None
        assert eng.view(1).core(3) == 1
        assert eng.view(3).core(3) == 3


class TestEngineLifecycle:
    def test_check_and_invariant_after_mixed_run(self):
        eng = Engine(triangle(), max_batch=4)
        eng.insert(0, 3)
        eng.remove(0, 1)
        eng.insert(0, 1)
        eng.query("degeneracy")
        eng.insert(4, 5)
        eng.check()  # flush + maintainer + history + accounting invariants
        assert invariant(eng.metrics())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch=0)
        with pytest.raises(ValueError):
            EngineConfig(max_pending=0)
        with pytest.raises(ValueError):
            EngineConfig(ingest_cost=-1.0)

    def test_metrics_epoch_log_and_latency(self):
        eng = Engine(DynamicGraph(), max_batch=2)
        eng.insert(0, 1)
        eng.insert(1, 2)
        m = eng.metrics()
        assert len(m["epochs"]) == 1
        e = m["epochs"][0]
        assert e["kind"] == "+" and e["batch_size"] == 2
        assert e["latency"]["count"] == 2
        assert m["latency"]["update"]["count"] == 2
        assert m["latency"]["update"]["max"] > 0
