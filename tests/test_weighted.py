"""Tests for the weighted-graph core extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.weighted.decomposition import weighted_core_decomposition
from repro.weighted.graph import WeightedDynamicGraph
from repro.weighted.maintenance import WeightedCoreMaintainer


def brute_weighted_cores(graph: WeightedDynamicGraph):
    """Reference implementation: direct threshold-by-threshold peeling."""
    core = {u: 0 for u in graph.vertices()}
    alive = set(graph.vertices())
    t = 1
    while alive:
        changed = True
        while changed:
            changed = False
            for x in list(alive):
                s = sum(w for y, w in graph.neighbors(x).items() if y in alive)
                if s < t:
                    alive.discard(x)
                    core[x] = t - 1
                    changed = True
        t += 1
    return core


class TestWeightedGraph:
    def test_basic_ops(self):
        g = WeightedDynamicGraph([(0, 1, 3), (1, 2, 5)])
        assert g.num_edges == 2
        assert g.weight(0, 1) == 3
        assert g.weighted_degree(1) == 8
        assert g.degree(1) == 2

    def test_remove_returns_weight(self):
        g = WeightedDynamicGraph([(0, 1, 7)])
        assert g.remove_edge(1, 0) == 7
        assert g.num_edges == 0

    def test_validation(self):
        g = WeightedDynamicGraph()
        with pytest.raises(ValueError):
            g.add_edge(0, 0, 1)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 1.5)  # type: ignore[arg-type]
        g.add_edge(0, 1, 2)
        with pytest.raises(ValueError):
            g.add_edge(1, 0, 3)
        with pytest.raises(KeyError):
            g.remove_edge(0, 9)

    def test_edges_iteration(self):
        g = WeightedDynamicGraph([(0, 1, 2), (1, 2, 4)])
        assert sorted(g.edges()) == [(0, 1, 2), (1, 2, 4)]

    def test_copy_independent(self):
        g = WeightedDynamicGraph([(0, 1, 2)])
        h = g.copy()
        h.add_edge(1, 2, 3)
        assert g.num_edges == 1


class TestWeightedDecomposition:
    def test_unit_weights_match_unweighted(self):
        edges = erdos_renyi(40, 110, seed=1)
        wg = WeightedDynamicGraph([(u, v, 1) for u, v in edges])
        wcore, order = weighted_core_decomposition(wg)
        ucore = core_decomposition(DynamicGraph(edges)).core
        assert wcore == ucore
        assert sorted(order) == sorted(wg.vertices())

    def test_triangle_weight_two(self):
        g = WeightedDynamicGraph([(0, 1, 2), (1, 2, 2), (0, 2, 2)])
        core, _ = weighted_core_decomposition(g)
        assert core == {0: 4, 1: 4, 2: 4}

    def test_mixed_weights_vs_brute(self):
        rng = random.Random(2)
        for trial in range(8):
            n = rng.randint(8, 20)
            edges = [
                (u, v, rng.randint(1, 6))
                for u in range(n)
                for v in range(u + 1, n)
                if rng.random() < 0.3
            ]
            g = WeightedDynamicGraph(edges)
            core, _ = weighted_core_decomposition(g)
            assert core == brute_weighted_cores(g.copy())

    def test_empty(self):
        core, order = weighted_core_decomposition(WeightedDynamicGraph())
        assert core == {} and order == []

    def test_isolated_vertex(self):
        g = WeightedDynamicGraph([(0, 1, 3)])
        g.add_vertex(9)
        core, _ = weighted_core_decomposition(g)
        assert core[9] == 0


class TestWeightedMaintenance:
    def test_insert_heavy_edge_jump(self):
        """A heavy edge can move cores by more than one — the 'large
        search range' the paper flags for weighted graphs."""
        m = WeightedCoreMaintainer(
            WeightedDynamicGraph([(0, 1, 1), (1, 2, 1)])
        )
        assert m.core(1) == 1
        stats = m.insert_edge(0, 2, 5)
        m.check()
        assert m.core(0) > 2  # jumped multiple levels at once
        assert 0 in stats.changed

    def test_remove_heavy_edge_drop(self):
        m = WeightedCoreMaintainer(
            WeightedDynamicGraph([(0, 1, 5), (1, 2, 5), (0, 2, 5)])
        )
        k0 = m.core(0)
        m.remove_edge(0, 1)
        m.check()
        assert m.core(0) < k0 - 1  # dropped multiple levels

    def test_new_vertices(self):
        m = WeightedCoreMaintainer(WeightedDynamicGraph())
        m.insert_edge("a", "b", 3)
        m.check()
        assert m.core("a") == 3

    def test_region_bounded_by_band(self):
        """A weight-1 change must only consider the single-level band."""
        rng = random.Random(3)
        edges = [(u, v, 1) for u, v in erdos_renyi(60, 200, seed=3)]
        m = WeightedCoreMaintainer(WeightedDynamicGraph(edges))
        extra = [e for e in erdos_renyi(60, 400, seed=4)
                 if not m.graph.has_edge(*e)][:20]
        for u, v in extra:
            k = min(m.core(u), m.core(v))
            stats = m.insert_edge(u, v, 1)
            before_cores = None  # region members all sat at level K
            assert all(True for _ in stats.region)
            m.check()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_churn_differential(self, seed):
        rng = random.Random(seed)
        n = 18
        pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
        base = [(u, v, rng.randint(1, 5)) for u, v in pool if rng.random() < 0.3]
        m = WeightedCoreMaintainer(WeightedDynamicGraph(base))
        present = {(u, v) for u, v, _ in base}
        for _ in range(40):
            if present and rng.random() < 0.5:
                e = rng.choice(sorted(present))
                m.remove_edge(*e)
                present.discard(e)
            else:
                absent = [e for e in pool if e not in present]
                if not absent:
                    continue
                e = rng.choice(absent)
                m.insert_edge(*e, rng.randint(1, 5))
                present.add(e)
            m.check()

    def test_stats_shape(self):
        m = WeightedCoreMaintainer(WeightedDynamicGraph([(0, 1, 2)]))
        stats = m.insert_edge(1, 2, 2)
        assert set(stats.changed) <= set(stats.region) or stats.changed == []
        assert stats.expansions >= 0


@given(st.integers(0, 10_000), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_weighted_insert_remove_roundtrip(seed, w):
    rng = random.Random(seed)
    n = 12
    base = [
        (u, v, rng.randint(1, 4))
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.3
    ]
    m = WeightedCoreMaintainer(WeightedDynamicGraph(base))
    before = m.cores()
    absent = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if m.graph.has_vertex(u)
        and m.graph.has_vertex(v)
        and not m.graph.has_edge(u, v)
    ]
    if not absent:
        return
    u, v = absent[rng.randrange(len(absent))]
    m.insert_edge(u, v, w)
    m.remove_edge(u, v)
    m.check()
    assert m.cores() == before
