"""Hypothesis stateful test (ISSUE 10 satellite): a sliding-window
engine stepped across window-expiry boundaries, with interleaved
queries, against the ideal :class:`~repro.traffic.shapes.WindowModel`
plus a from-scratch decomposition oracle.

The machine mirrors the engine's window semantics in the model: an
insert is due at ``submit-time + window`` (the engine stamps arrival at
QUEUE and arms at commit), expiries are inclusive (``due <= event_now``),
and a re-insert racing a fired expiry annihilates it and re-arms at the
same event time the model re-adds with.  After every quiesce
(``drain_window``) the committed graph, the core numbers, and snapshot
query answers must match the model exactly.  Extends the
``ChaosEngineMachine`` pattern of ``test_faults_differential``."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.decomposition import core_decomposition
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.service import Engine, EngineConfig
from repro.traffic.shapes import WindowModel

WINDOW = 100.0


class SlidingWindowMachine(RuleBasedStateMachine):
    VERTICES = 12

    def __init__(self):
        super().__init__()
        self.cfg = EngineConfig(window=WINDOW, max_batch=3,
                                max_delay=None, seed=17)
        self.eng = Engine(DynamicGraph(), self.cfg)
        self.model = WindowModel()
        # edges with an op pending in the engine: one in-flight op per
        # edge between quiesces keeps the model's arming rule exact
        self.inflight = set()

    # -- time ----------------------------------------------------------
    @rule(delta=st.sampled_from([1.0, 10.0, 40.0, 60.0, 100.0, 150.0]))
    def advance(self, delta):
        t = self.eng.event_now + delta
        self.eng.advance_to(t)
        self.model.pop_due(t)

    @rule()
    def advance_to_next_boundary(self):
        """Land exactly on a multiple of the window — the inclusive
        boundary the driver's oracle checks pivot on."""
        t = (self.eng.event_now // WINDOW + 1) * WINDOW
        self.eng.advance_to(t)
        self.model.pop_due(t)

    # -- traffic -------------------------------------------------------
    @rule(data=st.data())
    def insert(self, data):
        n = self.VERTICES
        absent = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if (u, v) not in self.model and (u, v) not in self.inflight
        ]
        if not absent:
            return
        e = data.draw(st.sampled_from(absent))
        t = self.eng.event_now
        self.eng.insert(*e)
        self.inflight.add(e)
        # a fired-but-uncommitted expiry for e is annihilated by this
        # insert and re-armed at event_now + window — the same due the
        # model records here
        self.model.add(e, t + WINDOW)

    @precondition(lambda self: any(
        e not in self.inflight for e in self.model.due))
    @rule(data=st.data())
    def remove(self, data):
        candidates = sorted(
            e for e in self.model.due if e not in self.inflight
        )
        e = data.draw(st.sampled_from(candidates))
        self.eng.remove(*e)
        self.inflight.add(e)
        self.model.discard(e)

    @rule(v=st.integers(min_value=0, max_value=VERTICES - 1))
    def query_midstream(self, v):
        """Queries interleave freely; mid-stream they answer against the
        committed epoch, so only the envelope is asserted here (the
        quiesced compare checks values)."""
        r = self.eng.query("core", v)
        assert r.status in ("committed", "quarantined")
        if r.status == "quarantined":
            assert r.error["code"] == "unknown-vertex"

    # -- oracle --------------------------------------------------------
    @rule()
    def quiesce_and_compare(self):
        self.eng.drain_window()
        self.model.pop_due(self.eng.event_now)
        self.inflight.clear()
        assert sorted(self.eng.graph.edges()) == self.model.edges()
        oracle = core_decomposition(DictGraph(self.model.edges())).core
        got = self.eng.cores()
        for u, k in oracle.items():
            assert got[u] == k, f"core[{u}]={got[u]} != oracle {k}"
        for u, k in got.items():
            if u not in oracle:
                assert k == 0, f"dangling vertex {u} has core {k}"
        # armed expiries must cover exactly the present edges
        assert self.eng.expiries_armed() == len(self.model)
        # snapshot queries agree with the oracle once quiesced
        for u in list(oracle)[:3]:
            r = self.eng.query("core", u)
            assert r.status == "committed" and r.value == oracle[u]

    def teardown(self):
        self.quiesce_and_compare()
        self.eng.check()


TestSlidingWindowMachine = SlidingWindowMachine.TestCase
TestSlidingWindowMachine.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)


def test_machine_edges_survive_exactly_one_window():
    """Deterministic sanity run of the same semantics the machine
    checks: edges inserted at k distinct times die in due order."""
    eng = Engine(DynamicGraph(), EngineConfig(window=WINDOW, max_batch=2,
                                              max_delay=None))
    for i in range(4):
        eng.advance_to(25.0 * i)
        eng.insert(i, i + 1)
    eng.flush()
    for i in range(4):
        eng.advance_to(WINDOW + 25.0 * i)
        eng.drain_window()
        survivors = {canonical_edge(j, j + 1) for j in range(i + 1, 4)}
        assert set(eng.graph.edges()) == survivors
    eng.check()
