"""Unit tests for the Traversal baseline (TI/TR) and its memoization."""

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.maintainer import TraversalMaintainer
from repro.core.traversal import (
    TraversalMemo,
    traversal_insert_edge,
    traversal_remove_edge,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from tests.conftest import assert_cores_match_bz


class TestMemo:
    def _setup(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3)])
        core = dict(core_decomposition(g).core)
        return g, core

    def test_mcd_definition(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core)
        assert memo.mcd(3) == 1  # neighbor 2 has core 2 >= 1
        assert memo.mcd(0) == 2  # both triangle partners

    def test_pcd_definition(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core)
        # pcd(0): neighbors 1,2 have core == 2; counted iff their mcd > 2
        assert memo.pcd(0) == sum(1 for w in (1, 2) if memo.mcd(w) > 2)

    def test_cache_hit_is_cheaper(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core)
        memo.mcd(0)
        w1 = memo.work
        memo.mcd(0)
        assert memo.work - w1 < g.degree(0)

    def test_transient_memo_clears_between_ops(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core, persistent=False)
        memo.mcd(0)
        memo.reset_op()
        assert memo._mcd == {}

    def test_persistent_memo_survives_reset(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core, persistent=True)
        memo.mcd(0)
        memo.reset_op()
        assert 0 in memo._mcd

    def test_invalidation_evicts_changed_neighborhood(self):
        g, core = self._setup()
        memo = TraversalMemo(g, core, persistent=True)
        for u in g.vertices():
            memo.mcd(u)
            memo.pcd(u)
        memo.invalidate_after_op((0, 1), (2,))
        assert 2 not in memo._mcd        # changed vertex
        assert 0 not in memo._mcd        # endpoint
        assert 3 not in memo._mcd        # neighbor of changed vertex
        assert 3 not in memo._pcd        # 2-hop dependent


class TestInsert:
    def test_triangle_completion(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        core = dict(core_decomposition(g).core)
        stats = traversal_insert_edge(g, core, 0, 2)
        assert sorted(stats.v_star) == [0, 1, 2]
        assert core == core_decomposition(g).core

    def test_duplicate_raises(self):
        g = DynamicGraph([(0, 1)])
        core = dict(core_decomposition(g).core)
        with pytest.raises(ValueError):
            traversal_insert_edge(g, core, 1, 0)

    def test_new_vertices_registered(self):
        g = DynamicGraph([(0, 1)])
        core = dict(core_decomposition(g).core)
        traversal_insert_edge(g, core, 5, 6)
        assert core[5] == core[6] == 1

    def test_work_is_positive_and_grows_with_vplus(self):
        g = DynamicGraph(powerlaw_cluster(60, 3, 0.6, seed=1))
        core = dict(core_decomposition(g).core)
        extra = [e for e in erdos_renyi(60, 400, seed=2) if not g.has_edge(*e)]
        works = []
        vplus = []
        for e in extra[:40]:
            s = traversal_insert_edge(g, core, *e)
            works.append(s.work)
            vplus.append(len(s.v_plus))
        assert all(w > 0 for w in works)
        # bigger searches cost more (coarse monotonicity on the extremes)
        hi = works[vplus.index(max(vplus))]
        lo = works[vplus.index(min(vplus))]
        assert hi >= lo

    def test_vplus_superset_vstar(self):
        g = DynamicGraph(erdos_renyi(40, 110, seed=3))
        core = dict(core_decomposition(g).core)
        extra = [e for e in erdos_renyi(40, 300, seed=4) if not g.has_edge(*e)]
        for e in extra[:50]:
            s = traversal_insert_edge(g, core, *e)
            assert set(s.v_star) <= set(s.v_plus)
        assert core == core_decomposition(g).core


class TestRemove:
    def test_break_triangle(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        core = dict(core_decomposition(g).core)
        stats = traversal_remove_edge(g, core, 0, 1)
        assert sorted(stats.v_star) == [0, 1, 2]
        assert core == core_decomposition(g).core

    def test_missing_raises(self):
        g = DynamicGraph([(0, 1)])
        core = dict(core_decomposition(g).core)
        with pytest.raises(KeyError):
            traversal_remove_edge(g, core, 0, 9)

    def test_random_removals_correct(self):
        g = DynamicGraph(erdos_renyi(40, 120, seed=5))
        core = dict(core_decomposition(g).core)
        for e in list(g.edges())[:60]:
            traversal_remove_edge(g, core, *e)
        assert core == core_decomposition(g).core


class TestMaintainerFacade:
    def test_mixed_workload(self, rng):
        g = DynamicGraph(erdos_renyi(40, 100, seed=6))
        m = TraversalMaintainer(g)
        absent = [e for e in erdos_renyi(40, 300, seed=7) if not g.has_edge(*e)]
        present = list(g.edges())
        for _ in range(200):
            if absent and (not present or rng.random() < 0.5):
                e = absent.pop(rng.randrange(len(absent)))
                m.insert_edge(*e)
                present.append(e)
            else:
                e = present.pop(rng.randrange(len(present)))
                m.remove_edge(*e)
                absent.append(e)
        m.check()
        assert_cores_match_bz(m)

    def test_batch_helpers(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        m = TraversalMaintainer(g)
        m.insert_edges([(0, 2), (0, 3)])
        m.remove_edges([(0, 3)])
        m.check()


class TestPersistentMemoCorrectness:
    """The JEI/JER batching mechanism: persistent memo + conservative
    invalidation must never change results."""

    def test_insert_batch_same_cores_with_and_without_memo(self):
        base = erdos_renyi(50, 130, seed=8)
        extra = [e for e in erdos_renyi(50, 500, seed=9) if e not in set(base)][:80]

        g1 = DynamicGraph(base)
        c1 = dict(core_decomposition(g1).core)
        memo = TraversalMemo(g1, c1, persistent=True)
        for e in extra:
            traversal_insert_edge(g1, c1, *e, memo=memo)

        g2 = DynamicGraph(base)
        c2 = dict(core_decomposition(g2).core)
        for e in extra:
            traversal_insert_edge(g2, c2, *e)

        assert c1 == c2 == core_decomposition(g1).core

    def test_memo_saves_work(self):
        base = powerlaw_cluster(80, 4, 0.5, seed=10)
        g = DynamicGraph(base)
        core = dict(core_decomposition(g).core)
        extra = [e for e in erdos_renyi(80, 600, seed=11) if not g.has_edge(*e)][:60]

        g1, c1 = DynamicGraph(base), dict(core)
        memo = TraversalMemo(g1, c1, persistent=True)
        with_memo = sum(
            traversal_insert_edge(g1, c1, *e, memo=memo).work for e in extra
        )
        g2, c2 = DynamicGraph(base), dict(core)
        without = sum(traversal_insert_edge(g2, c2, *e).work for e in extra)
        assert with_memo < without
