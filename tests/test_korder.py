"""Tests for the k-order bookkeeping (single OM list + anchors)."""

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.korder import KOrder
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi


def make(edges):
    g = DynamicGraph(edges)
    d = core_decomposition(g)
    ko = KOrder.from_decomposition(d.core, d.order)
    return g, d, ko


class TestConstruction:
    def test_segments_match_cores(self):
        g, d, ko = make(erdos_renyi(40, 100, seed=1))
        for k in range(d.max_core + 1):
            for u in ko.sequence(k):
                assert d.core[u] == k

    def test_full_sequence_equals_peel_order(self):
        g, d, ko = make(erdos_renyi(40, 100, seed=2))
        assert ko.full_sequence() == d.order

    def test_check_valid_passes(self):
        g, d, ko = make(erdos_renyi(40, 100, seed=3))
        ko.check_valid(g)

    def test_empty(self):
        ko = KOrder()
        assert ko.full_sequence() == []
        assert ko.sequence(0) == []

    def test_add_vertex(self):
        ko = KOrder()
        ko.add_vertex("x", 0)
        assert ko.core["x"] == 0
        assert ko.sequence(0) == ["x"]
        with pytest.raises(ValueError):
            ko.add_vertex("x", 0)


class TestComparison:
    def test_precedes_matches_positions(self):
        g, d, ko = make(erdos_renyi(30, 80, seed=4))
        pos = {u: i for i, u in enumerate(d.order)}
        for i, u in enumerate(d.order):
            for v in d.order[i + 1 : i + 6]:
                assert ko.precedes(u, v)
                assert not ko.precedes(v, u)

    def test_precedes_irreflexive(self):
        g, d, ko = make([(0, 1), (1, 2)])
        assert not ko.precedes(0, 0)

    def test_precedes_concurrent_agrees(self):
        g, d, ko = make(erdos_renyi(30, 80, seed=5))
        for u in list(g.vertices())[:10]:
            for v in list(g.vertices())[:10]:
                if u != v:
                    assert ko.precedes(u, v) == ko.precedes_concurrent(u, v)

    def test_cross_segment_comparison_via_labels(self):
        # smaller core always precedes larger core, label-only
        g, d, ko = make([(0, 1), (1, 2), (0, 2), (2, 3)])  # 3 has core 1
        assert ko.core[3] == 1 and ko.core[0] == 2
        assert ko.precedes(3, 0)


class TestPostPre:
    def test_post_pre_partition_neighbors(self):
        g, d, ko = make(erdos_renyi(30, 90, seed=6))
        for u in g.vertices():
            post = set(ko.post(g, u))
            pre = set(ko.pre(g, u))
            assert post | pre == set(g.neighbors(u))
            assert not (post & pre)

    def test_count_post_matches_d_out(self):
        g, d, ko = make(erdos_renyi(30, 90, seed=7))
        for u in g.vertices():
            assert ko.count_post(g, u) == d.d_out[u]

    def test_filtered_by_core(self):
        g, d, ko = make(erdos_renyi(30, 90, seed=8))
        for u in list(g.vertices())[:10]:
            k = ko.core[u]
            assert all(ko.core[v] == k for v in ko.post(g, u, k=k))


class TestMoves:
    def test_promote_head(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2), (3, 0)])
        # 3 has core 1; promote it to 2 manually
        ko.promote_head(3, 2)
        assert ko.core[3] == 2
        assert ko.sequence(2)[0] == 3
        assert ko.sequence(1) == []

    def test_promote_after_chains(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2), (3, 0), (4, 0)])
        ko.promote_head(3, 2)
        ko.promote_after(3, 4, 2)
        assert ko.sequence(2)[:2] == [3, 4]

    def test_promote_after_requires_promoted_anchor(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2), (3, 0), (4, 0)])
        with pytest.raises(ValueError):
            ko.promote_after(3, 4, 2)  # anchor 3 still core 1

    def test_demote_tail(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2), (3, 0)])
        ko.demote_tail(0, 1)
        assert ko.core[0] == 1
        assert ko.sequence(1)[-1] == 0

    def test_promote_extends_levels(self):
        g, d, ko = make([(0, 1)])  # max core 1
        ko.promote_head(0, 2)
        assert ko.max_level >= 2
        assert ko.sequence(2) == [0]

    def test_move_after_vertex(self):
        g, d, ko = make(erdos_renyi(20, 50, seed=9))
        seq = ko.sequence(ko.core[d.order[0]])
        if len(seq) >= 3:
            a, b = seq[0], seq[2]
            ko.move_after_vertex(a, b)
            new_seq = ko.sequence(ko.core[a])
            assert new_seq.index(b) == new_seq.index(a) + 1

    def test_moves_bump_status(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2)])
        s0 = ko.status(0)
        ko.demote_tail(0, 1)
        assert ko.status(0) == s0 + 2
        assert ko.status(0) % 2 == 0

    def test_version_property(self):
        g, d, ko = make(erdos_renyi(20, 50, seed=10))
        assert ko.version == ko.om.version
        assert ko.relabels_in_progress == 0


class TestValidity:
    def test_check_valid_catches_core_segment_mismatch(self):
        g, d, ko = make([(0, 1), (1, 2), (0, 2)])
        ko.core[0] = 1  # corrupt: claims core 1 while sitting in O_2
        with pytest.raises(AssertionError):
            ko.check_valid(g)

    def test_check_valid_catches_order_violation(self):
        # a path graph where we artificially give a vertex too many successors
        g = DynamicGraph([(0, 1), (1, 2), (2, 3)])
        d = core_decomposition(g)
        ko = KOrder.from_decomposition(d.core, d.order)
        # demote 2's neighbors' positions so 1 has both neighbors after it:
        # move 0 and 2 after 1 in O_1 by re-threading 0 to the tail
        ko.demote_tail(0, 1)  # 0 now at tail: neighbor 1 gets 2 successors
        with pytest.raises(AssertionError):
            ko.check_valid(g)
