"""Tests for the JEI/JER and MI/MR batch baselines."""

import pytest

from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.baselines.matching import MatchingMaintainer, greedy_matchings
from repro.baselines.scheduling import chunk_round_makespan, lpt_makespan
from repro.core.maintainer import TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi, rmat
from tests.conftest import assert_cores_match_bz, split_edges


class TestScheduling:
    def test_lpt_single_worker_is_sum(self):
        assert lpt_makespan([3, 1, 2], 1) == 6

    def test_lpt_many_workers_is_max(self):
        assert lpt_makespan([3, 1, 2], 10) == 3

    def test_lpt_balances(self):
        assert lpt_makespan([4, 3, 3], 2) == 6  # [4+?]: 4|3,3 -> 6

    def test_lpt_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_lpt_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_makespan([1], 0)

    def test_rounds_sum_of_maxima(self):
        rounds = [[2, 2, 2], [5]]
        assert chunk_round_makespan(rounds, 3) == 2 + 5

    def test_rounds_single_worker(self):
        rounds = [[2, 2, 2], [5]]
        assert chunk_round_makespan(rounds, 1) == 11


class TestGreedyMatchings:
    def test_rounds_are_vertex_disjoint(self):
        edges = erdos_renyi(30, 80, seed=1)
        for rnd in greedy_matchings(edges):
            used = set()
            for u, v in rnd:
                assert u not in used and v not in used
                used.update((u, v))

    def test_all_edges_covered_once(self):
        edges = erdos_renyi(30, 80, seed=2)
        rounds = greedy_matchings(edges)
        flat = [e for r in rounds for e in r]
        assert sorted(flat) == sorted(edges)

    def test_star_needs_one_round_per_edge(self):
        star = [(0, i) for i in range(1, 8)]
        rounds = greedy_matchings(star)
        assert len(rounds) == 7

    def test_empty(self):
        assert greedy_matchings([]) == []


@pytest.mark.parametrize("cls", [JoinEdgeSetMaintainer, MatchingMaintainer])
class TestCorrectness:
    def test_insert_remove_roundtrip(self, cls):
        edges = erdos_renyi(60, 200, seed=3)
        base, dyn = split_edges(edges)
        m = cls(DynamicGraph(base), num_workers=4)
        m.insert_edges(dyn)
        m.check()
        m.remove_edges(dyn)
        m.check()
        assert_cores_match_bz(m)

    def test_batch_validation(self, cls):
        m = cls(DynamicGraph([(0, 1)]), num_workers=2)
        with pytest.raises(ValueError):
            m.insert_edges([(0, 1)])
        with pytest.raises(ValueError):
            m.insert_edges([(2, 3), (3, 2)])
        with pytest.raises(KeyError):
            m.remove_edges([(5, 6)])

    def test_new_vertices(self, cls):
        m = cls(DynamicGraph([(0, 1)]), num_workers=2)
        m.insert_edges([(7, 8), (8, 9), (7, 9)])
        assert m.core(7) == 2
        m.check()

    def test_empty_batch(self, cls):
        m = cls(DynamicGraph([(0, 1)]), num_workers=2)
        res = m.insert_edges([])
        assert res.makespan == 0.0


class TestParallelismShape:
    """The structural claims the paper's evaluation rests on."""

    def test_jei_no_speedup_on_uniform_core_graph(self):
        """BA has one core value -> one level task -> JEI is sequential."""
        edges = barabasi_albert(200, 4, seed=4)
        batch = edges[-80:]
        t = {}
        for p in (1, 16):
            m = JoinEdgeSetMaintainer(DynamicGraph(edges), num_workers=p)
            m.remove_edges(batch)
            t[p] = m.insert_edges(batch).makespan
        assert t[16] >= 0.95 * t[1]  # essentially no speedup

    def test_jei_speedup_on_multilevel_graph(self):
        edges = rmat(8, 4, seed=5)
        batch = edges[-100:]
        t = {}
        for p in (1, 16):
            m = JoinEdgeSetMaintainer(DynamicGraph(edges), num_workers=p)
            m.remove_edges(batch)
            t[p] = m.insert_edges(batch).makespan
        assert t[16] < t[1]

    def test_jei_beats_plain_ti_at_one_worker(self):
        """The batching gain: JEI@1 < TI on a cascade-heavy graph."""
        edges = erdos_renyi(200, 800, seed=6)
        batch = edges[-120:]
        je = JoinEdgeSetMaintainer(DynamicGraph(edges), num_workers=1)
        je.remove_edges(batch)
        jei = je.insert_edges(batch).report.total_work

        tm = TraversalMaintainer(DynamicGraph(edges))
        tm.remove_edges(batch)
        ti = sum(s.work for s in tm.insert_edges(batch))
        assert jei < ti

    def test_mi_not_faster_than_jei(self):
        """MI's barriers + per-round memos make it the slowest contender."""
        edges = rmat(8, 4, seed=7)
        batch = edges[-100:]
        je = JoinEdgeSetMaintainer(DynamicGraph(edges), num_workers=16)
        je.remove_edges(batch)
        t_je = je.insert_edges(batch).makespan
        mi = MatchingMaintainer(DynamicGraph(edges), num_workers=16)
        mi.remove_edges(batch)
        t_mi = mi.insert_edges(batch).makespan
        assert t_mi >= 0.8 * t_je  # allow noise; MI must not win big

    def test_matching_rounds_serialize_star_batch(self):
        """A star-shaped batch forces MI into one edge per round."""
        base = erdos_renyi(40, 120, seed=8)
        g = DynamicGraph(base)
        hub = 0
        batch = [(hub, 1000 + i) for i in range(10)]
        m = MatchingMaintainer(g, num_workers=16)
        res = m.insert_edges(batch)
        # with 10 rounds of one edge, makespan ~ total work (no parallelism)
        assert res.makespan >= 0.9 * res.report.total_work
