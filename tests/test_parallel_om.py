"""Tests for the parallel OM wrapper (status protocol, Algorithm 4)."""

import threading

from repro.om.list_labels import OMItem
from repro.om.parallel_om import ParallelOMList


def build(n=10, capacity=8):
    lst = ParallelOMList(capacity=capacity)
    items = []
    for i in range(n):
        it = OMItem(i)
        lst.insert_tail(it)
        items.append(it)
    return lst, items


class TestStatusProtocol:
    def test_begin_end_move_parity(self):
        lst, items = build()
        x = items[0]
        assert x.s % 2 == 0
        lst.begin_move(x)
        assert x.s % 2 == 1
        lst.end_move(x)
        assert x.s % 2 == 0

    def test_move_after_bumps_status_twice(self):
        lst, items = build()
        s0 = items[3].s
        lst.move_after(items[5], items[3])
        assert items[3].s == s0 + 2
        assert lst.to_list().index(3) == lst.to_list().index(5) + 1

    def test_order_concurrent_agrees_with_order(self):
        lst, items = build(20)
        for i in range(0, 20, 3):
            for j in range(0, 20, 4):
                if i != j:
                    assert lst.order_concurrent(items[i], items[j]) == (i < j)

    def test_order_concurrent_same_item(self):
        lst, items = build()
        assert lst.order_concurrent(items[0], items[0]) is False

    def test_on_spin_not_called_when_stable(self):
        lst, items = build()
        spins = []
        lst.order_concurrent(items[0], items[1], on_spin=lambda: spins.append(1))
        assert spins == []

    def test_spin_while_status_odd(self):
        """A reader observing an odd status must retry until it is even."""
        lst, items = build()
        x = items[0]
        lst.begin_move(x)
        calls = {"n": 0}

        def on_spin():
            calls["n"] += 1
            if calls["n"] > 3:
                lst.end_move(x)  # the 'mover' finishes

        assert lst.order_concurrent(x, items[1], on_spin=on_spin) is True
        assert calls["n"] > 3


class TestUnderThreads:
    def test_concurrent_readers_with_mover(self):
        """Readers comparing while a mover shuffles items: no crashes and
        every returned comparison is internally consistent."""
        lst, items = build(50, capacity=4)
        stop = threading.Event()
        errors = []

        def mover():
            try:
                for round_ in range(300):
                    x = items[round_ % 50]
                    anchor = items[(round_ * 7 + 1) % 50]
                    if x is anchor:
                        continue
                    x.s += 1
                    lst.delete(x)
                    lst.insert_after(anchor, x)
                    x.s += 1
            except BaseException as e:  # noqa: BLE001
                errors.append(e)
            finally:
                stop.set()

        def reader():
            try:
                i = 0
                while not stop.is_set():
                    a = items[i % 50]
                    b = items[(i * 3 + 1) % 50]
                    if a is not b:
                        r1 = lst.order_concurrent(a, b)
                        assert isinstance(r1, bool)
                    i += 1
            except BaseException as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=mover)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        lst.check_invariants()


class TestTornReadRecovery:
    def test_order_concurrent_retries_through_torn_read(self, monkeypatch):
        """A torn read (exception while the mover's status is odd) must be
        retried, not propagated (the thread backend's failure mode)."""
        lst, items = build(6)
        x, y = items[0], items[1]
        calls = {"n": 0}
        real_order = ParallelOMList.order
        # Model a mid-splice observation: y's group pointer is torn (None),
        # which also defeats the inline stable-snapshot fast path, so the
        # retry loop is what must recover.
        saved_group = y.group
        y.group = None

        def flaky_order(self, a, b):
            calls["n"] += 1
            if calls["n"] == 1:
                # the mover finishes its splice, then our read tears
                b.group = saved_group
                raise AttributeError("mid-splice read")
            return real_order(self, a, b)

        monkeypatch.setattr(ParallelOMList, "order", flaky_order)
        assert lst.order_concurrent(x, y) is True
        assert calls["n"] >= 2
