"""Chaos differential suite (fault-plane ISSUE satellite).

Three layers of the same claim — injected faults are invisible in
committed results as long as the retry budget outlasts the crash
budget:

* seeded differentials over every small graph family: a faulty engine
  (crashes + stalls + timeouts, journal, checkpoints, retries) answers
  the same statuses and ends on the same cores as a clean engine;
* benign schedules (stall/timeout only) leave even the epoch timeline
  untouched;
* a hypothesis stateful machine drives an engine through interleaved
  inserts/removes/flushes/process-restarts and checks it against a
  never-crashed :class:`DictGraph` oracle after every flush.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    precondition,
    rule,
)

from repro.core.decomposition import core_decomposition
from repro.faults.plane import FaultSpec
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.service import Engine, EngineConfig
from repro.service.requests import STATUS_ABANDONED

from tests.conftest import assert_cores_match_bz, small_graph_families

#: more retries than the crash budget, so no batch is ever abandoned and
#: the faulty engine must converge to the clean one
CHAOS = FaultSpec(crash_rate=0.02, stall_rate=0.02, timeout_rate=0.02,
                  max_crashes=5)
BENIGN = FaultSpec(stall_rate=0.15, timeout_rate=0.15)


def _trace(edges, seed):
    """A deterministic insert/remove mix over/around an edge list."""
    ops, present = [], set()
    for i, (u, v) in enumerate(edges):
        e = canonical_edge(u, v)
        if i % 4 == 3 and present:
            out = sorted(present, key=repr)[i % len(present)]
            ops.append(("remove", *out))
            present.discard(out)
        elif e not in present:
            ops.append(("insert", u, v))
            present.add(e)
    return ops


def _run(initial, ops, spec, seed):
    eng = Engine(DynamicGraph(initial),
                 EngineConfig(max_batch=4, seed=seed, faults=spec,
                              max_retries=10, checkpoint_every=3))
    for i, (op, u, v) in enumerate(ops):
        (eng.insert if op == "insert" else eng.remove)(u, v)
        if i % 5 == 4:
            eng.query("degeneracy")
    eng.flush()
    return eng, [(r.id, r.status, r.epoch) for r in eng.take_completed()]


@pytest.mark.parametrize(
    "name,edges", small_graph_families(seed=13), ids=lambda p: str(p)[:12]
)
def test_chaos_engine_matches_clean_engine(name, edges):
    cut = (2 * len(edges)) // 3
    ops = _trace(edges[cut:] + edges[:10], seed=13)
    faulty, f_statuses = _run(edges[:cut], ops, CHAOS, seed=13)
    clean, c_statuses = _run(edges[:cut], ops, None, seed=13)
    # per-operation terminal statuses and commit epochs agree...
    assert f_statuses == c_statuses
    # ...and so do the committed results
    assert faulty.epoch == clean.epoch
    assert faulty.cores() == clean.cores()
    faulty.check()
    assert_cores_match_bz(faulty.maintainer)
    # the journal's final edge set is the recovered graph
    assert faulty.journal.final_edges() == faulty._graph_edges()


def test_chaos_differential_actually_injected_crashes():
    """The parametrized differential is vacuous if the schedule never
    fires — require crashes *somewhere* across the families."""
    crashes = 0
    for _, edges in small_graph_families(seed=13):
        cut = (2 * len(edges)) // 3
        eng, _ = _run(edges[:cut], _trace(edges[cut:] + edges[:10], 13),
                      CHAOS, seed=13)
        crashes += eng.metrics()["faults"]["crashed_batches"]
    assert crashes > 0, "chaos spec never crashed a batch; retune rates"


@pytest.mark.parametrize("name,edges", small_graph_families(seed=4)[:3],
                         ids=lambda p: str(p)[:12])
def test_benign_faults_never_change_results(name, edges):
    """Stalls perturb timing and timeouts force CAS failures, but the
    protocol tolerates both: statuses, epochs and cores are identical
    to a fault-free run."""
    cut = len(edges) // 2
    ops = _trace(edges[cut:], seed=4)
    faulty, f_statuses = _run(edges[:cut], ops, BENIGN, seed=4)
    clean, c_statuses = _run(edges[:cut], ops, None, seed=4)
    flt = faulty.metrics()["faults"]
    assert flt["stalls_injected"] + flt["timeouts_injected"] > 0
    assert flt["crashed_batches"] == 0
    assert f_statuses == c_statuses
    assert faulty.epoch == clean.epoch
    assert faulty.cores() == clean.cores()


class ChaosEngineMachine(RuleBasedStateMachine):
    """Stateful chaos: a crashing, restarting engine vs a DictGraph
    oracle that never fails.

    The oracle tracks the *intended* edge set (inserts minus removes);
    rules only submit operations the engine will accept (fresh inserts,
    removes of intended edges), so after a flush the committed graph
    must equal the oracle exactly — crashes, retries and process
    restarts included.  max_retries exceeds the crash budget, so
    abandonment is impossible and divergence means a real bug.
    """

    VERTICES = 14

    def __init__(self):
        super().__init__()
        base = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        self.cfg = EngineConfig(
            max_batch=3, seed=21, checkpoint_every=2, max_retries=9,
            faults=FaultSpec(crash_rate=0.03, stall_rate=0.03,
                             timeout_rate=0.03, max_crashes=8),
        )
        self.eng = Engine(DynamicGraph(base), self.cfg)
        self.intended = {canonical_edge(u, v) for u, v in base}
        self.restarts = 0

    def _absent(self):
        n = self.VERTICES
        return [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if (u, v) not in self.intended
        ]

    @rule(data=st.data())
    def insert(self, data):
        absent = self._absent()
        if not absent:
            return
        u, v = data.draw(st.sampled_from(absent))
        resp = self.eng.insert(u, v)
        assert resp.status != STATUS_ABANDONED
        self.intended.add((u, v))

    @precondition(lambda self: self.intended)
    @rule(data=st.data())
    def remove(self, data):
        e = data.draw(st.sampled_from(sorted(self.intended)))
        self.eng.remove(*e)
        self.intended.discard(e)

    @rule()
    def flush_and_compare(self):
        for resp in self.eng.flush():
            assert resp.status != STATUS_ABANDONED, resp
        oracle = core_decomposition(DictGraph(sorted(self.intended))).core
        got = self.eng.cores()
        for u, k in oracle.items():
            assert got[u] == k, f"core[{u}]={got[u]} != oracle {k}"
        for u, k in got.items():
            # vertices that lost their last edge stay known, at core 0
            if u not in oracle:
                assert k == 0, f"dangling vertex {u} has core {k}"

    @rule()
    def crash_the_process_and_restart(self):
        """Process restart: flush (pending ops would be lost by the WAL
        contract, and the oracle cannot know which), then rebuild the
        engine from its journal bytes and keep going against it."""
        self.eng.flush()
        self.eng = Engine.from_journal(self.eng.journal.to_bytes(), self.cfg)
        self.restarts += 1

    def teardown(self):
        self.flush_and_compare()
        self.eng.check()


TestChaosEngineMachine = ChaosEngineMachine.TestCase
TestChaosEngineMachine.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
