"""Tests for the shared OrderState block (lazy mcd / d_out semantics)."""

import pytest

from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi


def mk(edges):
    return OrderState.from_graph(DynamicGraph(edges))


class TestInit:
    def test_from_graph_materializes_dout(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        assert all(s.d_out[u] is not None for u in s.graph.vertices())
        s.check_invariants()

    def test_mcd_starts_lazy(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        assert all(s.mcd[u] is None for u in s.graph.vertices())

    def test_t_starts_empty(self):
        s = mk([(0, 1)])
        assert s.t == {}


class TestEnsureVertex:
    def test_new_vertex_registered_at_core_zero(self):
        s = mk([(0, 1)])
        s.ensure_vertex("new")
        assert s.korder.core["new"] == 0
        assert s.d_out["new"] == 0
        assert s.korder.sequence(0)[-1] == "new"

    def test_idempotent(self):
        s = mk([(0, 1)])
        s.ensure_vertex(0)
        assert s.korder.core[0] == 1  # untouched


class TestEnsureMcd:
    def test_matches_definition(self):
        s = mk([(0, 1), (1, 2), (0, 2), (2, 3)])
        ko = s.korder
        for u in s.graph.vertices():
            got = s.ensure_mcd(u)
            cu = ko.core[u]
            want = sum(1 for v in s.graph.neighbors(u) if ko.core[v] >= cu)
            assert got == want

    def test_caches(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        v1 = s.ensure_mcd(0)
        s.mcd[0] = 99  # poke the cache; ensure must return it unchanged
        assert s.ensure_mcd(0) == 99
        assert v1 != 99 or True

    def test_pending_counts_as_support(self):
        # vertex 2's neighbor 0 "dropped" to core 1 but is pending: counted
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.korder.demote_tail(0, 1)
        got = s.ensure_mcd(2, pending={0})
        assert got == 2  # both neighbors support

    def test_visitor_counts_as_support(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.korder.demote_tail(0, 1)
        assert s.ensure_mcd(2, visitor=0) == 2

    def test_finished_drop_not_counted(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.korder.demote_tail(0, 1)
        assert s.ensure_mcd(2) == 1  # 0 is done: no longer supports 2


class TestEnsureDout:
    def test_materializes_and_caches(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.d_out[0] = None
        got = s.ensure_d_out(0)
        assert got == s.korder.count_post(s.graph, 0)
        assert s.d_out[0] == got

    def test_refresh(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.d_out[1] = 42
        s.refresh_d_out(1)
        assert s.d_out[1] == s.korder.count_post(s.graph, 1)


class TestInvalidation:
    def test_invalidate_mcd_around(self):
        s = mk([(0, 1), (1, 2), (2, 3)])
        for u in s.graph.vertices():
            s.ensure_mcd(u)
        s.invalidate_mcd_around([1])
        assert s.mcd[1] is None
        assert s.mcd[0] is None and s.mcd[2] is None
        assert s.mcd[3] is not None  # 2 hops away: untouched


class TestCheckInvariants:
    def test_detects_wrong_dout(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.d_out[0] = 7
        with pytest.raises(AssertionError):
            s.check_invariants()

    def test_detects_wrong_mcd(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        s.mcd[0] = 0
        with pytest.raises(AssertionError):
            s.check_invariants()

    def test_detects_wrong_core(self):
        s = mk([(0, 1), (1, 2), (0, 2)])
        # keep the order segment consistent but make cores wrong vs BZ:
        # demote all three triangle vertices
        for u in (0, 1, 2):
            s.korder.demote_tail(u, 1)
            s.d_out[u] = None
        with pytest.raises(AssertionError):
            s.check_invariants()

    def test_passes_on_fresh_state(self):
        s = mk(erdos_renyi(30, 80, seed=1))
        s.check_invariants()
