"""Tests for the core-number query helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.core.queries import (
    all_subcores,
    core_components,
    degeneracy,
    degeneracy_ordering,
    innermost_core,
    k_core_subgraph,
    k_core_vertices,
    k_shell,
    subcore,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster


def fresh(edges):
    g = DynamicGraph(edges)
    return g, dict(core_decomposition(g).core)


class TestKCore:
    def test_k_core_vertices(self):
        g, core = fresh([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert k_core_vertices(core, 2) == {0, 1, 2}
        assert k_core_vertices(core, 1) == {0, 1, 2, 3}
        assert k_core_vertices(core, 3) == set()

    def test_k_core_subgraph_min_degree_property(self):
        """Definition 3.1: every vertex of G_k has degree >= k inside G_k."""
        g, core = fresh(erdos_renyi(80, 320, seed=1))
        for k in range(1, degeneracy(core) + 1):
            sub = k_core_subgraph(g, core, k)
            for u in sub.vertices():
                assert sub.degree(u) >= k

    def test_nesting(self):
        g, core = fresh(erdos_renyi(80, 320, seed=2))
        prev = set(g.vertices())
        for k in range(0, degeneracy(core) + 1):
            cur = k_core_vertices(core, k)
            assert cur <= prev
            prev = cur

    def test_zero_core_is_everything(self):
        g, core = fresh([(0, 1)])
        g.add_vertex(7)
        core[7] = 0
        assert k_core_vertices(core, 0) == {0, 1, 7}


class TestShells:
    def test_shells_partition(self):
        g, core = fresh(erdos_renyi(60, 200, seed=3))
        total = 0
        for k in range(degeneracy(core) + 1):
            total += len(k_shell(core, k))
        assert total == g.num_vertices

    def test_innermost(self):
        g, core = fresh([(0, 1), (1, 2), (0, 2), (2, 3)])
        kmax, members = innermost_core(core)
        assert kmax == 2
        assert members == {0, 1, 2}

    def test_innermost_empty(self):
        assert innermost_core({}) == (0, set())


class TestSubcores:
    def test_subcore_connected_same_core(self):
        g, core = fresh(powerlaw_cluster(80, 3, 0.5, seed=4))
        for u in list(g.vertices())[:15]:
            sc = subcore(g, core, u)
            assert u in sc
            assert all(core[v] == core[u] for v in sc)

    def test_subcore_maximality(self):
        """No same-core neighbor outside the subcore."""
        g, core = fresh(erdos_renyi(60, 200, seed=5))
        u = next(iter(g.vertices()))
        sc = subcore(g, core, u)
        for w in sc:
            for v in g.neighbors(w):
                if core[v] == core[u]:
                    assert v in sc

    def test_all_subcores_partition(self):
        g, core = fresh(erdos_renyi(60, 200, seed=6))
        parts = all_subcores(g, core)
        union = set().union(*parts)
        assert union == set(g.vertices())
        assert sum(len(p) for p in parts) == g.num_vertices

    def test_two_triangles_are_separate_subcores(self, two_triangles_bridge):
        g = two_triangles_bridge
        core = dict(core_decomposition(g).core)
        # bridge vertex 2/3 connect the triangles; all vertices core 2 ->
        # the whole graph is one 2-subcore (connected via 2-3)
        assert len(all_subcores(g, core)) == 1


class TestDegeneracy:
    def test_degeneracy_value(self):
        g, core = fresh([(0, 1), (1, 2), (0, 2)])
        assert degeneracy(core) == 2
        assert degeneracy({}) == 0

    def test_degeneracy_ordering_property(self):
        g, core = fresh(erdos_renyi(60, 240, seed=7))
        order = degeneracy_ordering(g, core)
        pos = {u: i for i, u in enumerate(order)}
        d = degeneracy(core)
        for u in g.vertices():
            later = sum(1 for v in g.neighbors(u) if pos[v] > pos[u])
            assert later <= d


class TestComponents:
    def test_disconnected_dense_regions(self):
        g, core = fresh(
            [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12), (2, 10)]
        )
        comps = core_components(g, core, 2)
        # one component: 2-10 bridge is between two core-2 vertices
        assert len(comps) == 1
        g.remove_edge(2, 10)
        comps = core_components(g, core, 2)
        assert len(comps) == 2

    def test_empty_level(self):
        g, core = fresh([(0, 1)])
        assert core_components(g, core, 5) == []


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_kcore_subgraph_is_fixed_point(seed):
    """G_k recomputed on itself returns the same vertex set (maximality)."""
    g, core = fresh(erdos_renyi(30, 80, seed=seed))
    k = max(1, degeneracy(core))
    sub = k_core_subgraph(g, core, k)
    sub_core = core_decomposition(sub).core
    assert {u for u, c in sub_core.items() if c >= k} == set(sub.vertices())
