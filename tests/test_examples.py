"""The example scripts must run end-to-end (quick mode)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ, REPRO_EXAMPLE_QUICK="1")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "max core number" in out
    assert "invariants verified" in out
    assert "P=16" in out


def test_streaming_social_network():
    out = run_example("streaming_social_network.py")
    assert "max-core" in out
    assert "final state verified" in out


@pytest.mark.slow
def test_parallel_batch_comparison():
    out = run_example("parallel_batch_comparison.py", "BA")
    assert "OurI speedup" in out
    assert "single core value" in out


@pytest.mark.slow
def test_parallel_batch_comparison_other_dataset():
    out = run_example("parallel_batch_comparison.py", "roadNet-CA")
    assert "OurI speedup" in out


def test_contagion_monitoring():
    out = run_example("contagion_monitoring.py")
    assert "quarantined" in out
    assert "maintained cores verified" in out


def test_weighted_transactions():
    out = run_example("weighted_transactions.py")
    assert "systemic core" in out
    assert "verified against a full recomputation" in out


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "streaming_social_network.py",
     "parallel_batch_comparison.py", "contagion_monitoring.py",
     "weighted_transactions.py"],
)
def test_examples_have_docstrings(name):
    text = (EXAMPLES / name).read_text()
    assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""', '"""'))
