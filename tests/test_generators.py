"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.core.decomposition import core_decomposition
from repro.graph.generators import (
    barabasi_albert,
    dedupe_edges,
    erdos_renyi,
    lattice,
    powerlaw_cluster,
    rmat,
    temporal_stream,
)


def _no_dupes_no_loops(edges):
    assert all(u != v for u, v in edges)
    canon = {(min(u, v), max(u, v)) for u, v in edges}
    assert len(canon) == len(edges)


class TestDedupe:
    def test_removes_self_loops(self):
        assert dedupe_edges([(1, 1), (0, 1)]) == [(0, 1)]

    def test_removes_reversed_duplicates(self):
        assert dedupe_edges([(0, 1), (1, 0)]) == [(0, 1)]

    def test_preserves_first_seen_order(self):
        assert dedupe_edges([(2, 3), (0, 1), (3, 2)]) == [(2, 3), (0, 1)]


class TestErdosRenyi:
    def test_exact_edge_count(self):
        edges = erdos_renyi(100, 250, seed=1)
        assert len(edges) == 250
        _no_dupes_no_loops(edges)

    def test_deterministic_per_seed(self):
        assert erdos_renyi(50, 100, seed=7) == erdos_renyi(50, 100, seed=7)
        assert erdos_renyi(50, 100, seed=7) != erdos_renyi(50, 100, seed=8)

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, 100)

    def test_vertices_in_range(self):
        edges = erdos_renyi(30, 60, seed=2)
        assert all(0 <= u < 30 and 0 <= v < 30 for u, v in edges)

    def test_narrow_core_distribution(self):
        g = DynamicGraph(erdos_renyi(500, 2000, seed=3))
        decomp = core_decomposition(g)
        # ER at average degree 8 concentrates cores in a narrow band
        assert 3 <= decomp.max_core <= 8


class TestBarabasiAlbert:
    def test_every_vertex_has_core_k(self):
        """The property the paper's evaluation leans on: a BA graph has a
        single core value equal to the attachment parameter."""
        for k in (2, 3, 4):
            g = DynamicGraph(barabasi_albert(120, k, seed=k))
            cores = core_decomposition(g).core
            assert set(cores.values()) == {k}

    def test_min_degree_is_k(self):
        g = DynamicGraph(barabasi_albert(100, 3, seed=1))
        assert min(g.degree(u) for u in g.vertices()) == 3

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_deterministic(self):
        assert barabasi_albert(60, 3, seed=5) == barabasi_albert(60, 3, seed=5)

    def test_heavy_tail(self):
        g = DynamicGraph(barabasi_albert(400, 3, seed=2))
        degs = sorted((g.degree(u) for u in g.vertices()), reverse=True)
        assert degs[0] > 4 * degs[len(degs) // 2]  # hub much above median


class TestRmat:
    def test_size_and_validity(self):
        edges = rmat(8, edge_factor=4, seed=1)
        assert len(edges) == 4 * 256
        _no_dupes_no_loops(edges)

    def test_skewed_cores(self):
        g = DynamicGraph(rmat(9, 4, seed=2))
        hist = core_decomposition(g).histogram()
        # many low-core vertices, few high-core ones
        assert hist[min(hist)] > hist[max(hist)]

    def test_bad_probabilities_raise(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.6, b=0.3, c=0.3)

    def test_deterministic(self):
        assert rmat(6, 2, seed=9) == rmat(6, 2, seed=9)


class TestLattice:
    def test_max_core_is_three_with_diagonals(self):
        g = DynamicGraph(lattice(12, 12, diag_fraction=0.3, seed=1))
        assert core_decomposition(g).max_core == 3

    def test_pure_grid_max_core_two(self):
        g = DynamicGraph(lattice(10, 10, diag_fraction=0.0))
        assert core_decomposition(g).max_core == 2

    def test_bounded_degree(self):
        g = DynamicGraph(lattice(9, 9, diag_fraction=0.5, seed=2))
        assert max(g.degree(u) for u in g.vertices()) <= 8


class TestPowerlawCluster:
    def test_validity(self):
        edges = powerlaw_cluster(150, 4, 0.5, seed=1)
        _no_dupes_no_loops(edges)
        g = DynamicGraph(edges)
        assert g.num_vertices == 150

    def test_triangle_closure_raises_clustering(self):
        def triangles(g):
            t = 0
            for u in g.vertices():
                nbrs = list(g.neighbors(u))
                for i in range(len(nbrs)):
                    for j in range(i + 1, len(nbrs)):
                        if g.has_edge(nbrs[i], nbrs[j]):
                            t += 1
            return t

        flat = DynamicGraph(powerlaw_cluster(150, 4, 0.0, seed=3))
        clustered = DynamicGraph(powerlaw_cluster(150, 4, 0.9, seed=3))
        assert triangles(clustered) > triangles(flat)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(3, 3, 0.5)


class TestTemporalStream:
    def test_strictly_increasing_timestamps(self):
        stream = temporal_stream(100, 300, seed=1)
        ts = [t for _, _, t in stream]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_edges_distinct(self):
        stream = temporal_stream(100, 300, seed=2)
        _no_dupes_no_loops([(u, v) for u, v, _ in stream])

    def test_requested_length(self):
        assert len(temporal_stream(200, 500, seed=3)) == 500

    def test_deterministic(self):
        assert temporal_stream(50, 100, seed=4) == temporal_stream(50, 100, seed=4)
