"""The process backend's worker protocol, driven directly: one
:class:`ProcessShard` per test, no router.  Pins the pipe framing, the
error channel, the shared-memory refinement rounds, and the
quiesce-join-checkpoint shutdown sequence."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.interning import ShardedInterner
from repro.parallel.procs import (
    ProcessShard,
    _shard_edges,
    _shard_vertices,
    refine_distributed,
)
from repro.service.engine import Engine, EngineConfig
from repro.service.journal import REC_CHECKPOINT, EdgeJournal
from repro.service.requests import STATUS_COMMITTED, Request


def spec(journal_path=None):
    return {
        "config": EngineConfig(backend="thread", journal_path=journal_path),
        "fault_spec": None,
        "fault_seed": 0,
    }


def start_shard(init=(), foreign=(), journal_path=None, shard_id=0,
                nshards=1):
    return ProcessShard.start(shard_id, spec(journal_path), list(init),
                              nshards, foreign=foreign)


class TestWorkerProtocol:
    def test_submit_flush_epoch(self):
        sh = start_shard(init=[(0, 1)])
        assert sh.epoch() == 0
        r = sh.submit(Request("insert", u=1, v=2, id="a"))
        done = sh.flush()
        assert any(x.id == "a" and x.status == STATUS_COMMITTED
                   for x in done + sh.take_completed())
        assert sh.epoch() == 1
        assert r is not None
        sh.close()

    def test_submit_many_batches_one_frame(self):
        sh = start_shard()
        out = sh.submit_many([Request("insert", u=i, v=i + 1, id=f"r{i}")
                              for i in range(4)])
        assert len(out) == 4
        sh.flush()
        assert canonical_edge(2, 3) in {canonical_edge(u, v)
                                        for u, v in sh.edges()}
        sh.close()

    def test_edges_and_present_include_foreign(self):
        sh = start_shard(init=[(0, 1)], foreign=[(8, 9)])
        assert canonical_edge(8, 9) in {canonical_edge(u, v)
                                        for u, v in sh.edges()}
        assert {8, 9} <= set(sh.present_vertices())
        sh.close()

    def test_error_frame_raises_and_worker_survives(self):
        sh = start_shard()
        with pytest.raises(RuntimeError, match="unknown frame"):
            sh.rpc("no-such-frame")
        # the worker answered the error and kept serving
        assert sh.epoch() == 0
        sh.close()

    def test_engine_error_is_forwarded_not_fatal(self):
        sh = start_shard()
        with pytest.raises(RuntimeError, match="shard 0"):
            sh.rpc("commit2", "tx-that-never-prepared")
        assert sh.check() is None or True  # still responsive
        sh.close()

    def test_cross_prepare_commit_roundtrip(self):
        sh = start_shard()
        vote = sh.prepare_cross("t0", "+", (0, 1), "r0", peer=1)
        assert vote is None   # None = yes-vote; error code = refusal
        sh.commit_cross("t0")
        assert canonical_edge(0, 1) in {canonical_edge(u, v)
                                        for u, v in sh.edges()}
        sh.close()

    def test_track_role_group_prepares_into_foreign(self):
        sh = start_shard(shard_id=1, nshards=2)
        votes = sh.prepare_group(
            [("t0", "+", (0, 1), "r0", 0, "track")])
        assert votes == [None]   # yes-vote
        sh.commit_group(["t0"])
        assert canonical_edge(0, 1) in {canonical_edge(u, v)
                                        for u, v in sh.edges()}
        assert sh.epoch() == 0   # track side never runs the maintainer
        sh.close()


class TestShutdown:
    def test_quiesce_joins_worker_before_checkpoint(self, tmp_path):
        path = str(tmp_path / "j")
        sh = start_shard(journal_path=path)
        sh.submit(Request("insert", u=0, v=1))
        sh.flush()
        payload = sh.quiesce()
        # quiesce returns only after join: no writer left on the file
        assert not sh.process.is_alive()
        assert set(payload) >= {"epoch", "edges", "cores", "order",
                                "foreign"}
        sh.final_checkpoint(payload)
        j = EdgeJournal.load(path)
        assert j.records[-1]["t"] == REC_CHECKPOINT
        sh.close()

    def test_final_checkpoint_noop_without_journal(self):
        sh = start_shard()
        payload = sh.quiesce()
        sh.final_checkpoint(payload)   # must not raise
        sh.close()

    def test_abandon_stops_worker_without_checkpoint(self, tmp_path):
        path = str(tmp_path / "j")
        sh = start_shard(journal_path=path)
        sh.submit(Request("insert", u=0, v=1))
        sh.flush()
        sh.abandon()
        assert not sh.process.is_alive()
        j = EdgeJournal.load(path)
        assert all(r["t"] != REC_CHECKPOINT for r in j.records)

    def test_close_terminates_live_worker(self):
        sh = start_shard()
        assert sh.process.is_alive()
        sh.close()
        sh.process.join(timeout=10)
        assert not sh.process.is_alive()

    def test_recover_from_journal(self, tmp_path):
        path = str(tmp_path / "j")
        sh = start_shard(init=[(0, 1), (1, 2)], journal_path=path)
        sh.submit(Request("insert", u=2, v=0))
        sh.flush()
        payload = sh.quiesce()
        sh.final_checkpoint(payload)
        sh.close()
        rec = ProcessShard.start(0, spec(path), None, 1,
                                 recover_from=path)
        assert {canonical_edge(u, v) for u, v in rec.edges()} == {
            canonical_edge(0, 1), canonical_edge(1, 2),
            canonical_edge(0, 2)}
        rec.close()


class TestDistributedRefine:
    def test_matches_single_engine_decomposition(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5),
                 (5, 3), (0, 5), (6, 7)]
        interner = ShardedInterner(2)
        init = [[], []]
        finit = [[], []]
        for u, v in edges:
            e = canonical_edge(u, v)
            su, sv = interner.shard_of(e[0]), interner.shard_of(e[1])
            init[su].append(e)
            if sv != su:
                finit[sv].append(e)
        shards = [start_shard(init=init[s], foreign=finit[s],
                              shard_id=s, nshards=2)
                  for s in range(2)]
        try:
            vals, present = refine_distributed(shards, interner)
            got = {interner.external(g): vals[g] for g in present}
        finally:
            for sh in shards:
                sh.close()
        oracle = Engine(DynamicGraph(list(edges)),
                        EngineConfig(backend="sim"))
        want = dict(oracle.maintainer.cores())
        oracle.close()
        assert got == want

    def test_refine_is_repeatable_on_live_workers(self):
        """refine_begin/refine_end must leave the worker reusable —
        cores() is queried many times per engine lifetime."""
        interner = ShardedInterner(1)
        for v in (0, 1, 2):
            interner.intern(v)
        sh = start_shard(init=[(0, 1), (1, 2), (2, 0)])
        try:
            first = refine_distributed([sh], interner)
            second = refine_distributed([sh], interner)
        finally:
            sh.close()
        assert first == second
        assert first[0] and set(first[1]) == {interner.intern(v)
                                              for v in (0, 1, 2)}

    def test_empty_interner_short_circuits(self):
        interner = ShardedInterner(1)
        assert refine_distributed([], interner) == ([], set())


class TestWorkerHelpers:
    def test_shard_edges_appends_foreign(self):
        eng = Engine(DynamicGraph([(0, 1)]), EngineConfig(backend="sim"),
                     foreign=[(5, 6)])
        assert _shard_edges(eng) == list(eng.graph.edges()) + [
            canonical_edge(5, 6)]
        eng.close()

    def test_shard_vertices_dedups_foreign_endpoints(self):
        eng = Engine(DynamicGraph([(0, 1)]), EngineConfig(backend="sim"),
                     foreign=[(1, 2)])
        vs = _shard_vertices(eng)
        assert sorted(vs) == [0, 1, 2]
        assert len(vs) == 3
        eng.close()
