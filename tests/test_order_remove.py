"""Unit tests for the sequential Order removal (OR, Algorithm 10)."""

import pytest

from repro.core.maintainer import OrderMaintainer
from repro.core.state import OrderState
from repro.core.order_remove import order_remove_edge
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from tests.conftest import assert_cores_match_bz


class TestSingleRemovals:
    def test_break_triangle(self):
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
        stats = m.remove_edge(0, 1)
        assert sorted(stats.v_star) == [0, 1, 2]
        assert all(m.core(u) == 1 for u in (0, 1, 2))
        m.check()

    def test_remove_pendant_no_cascade(self):
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3)]))
        stats = m.remove_edge(2, 3)
        assert stats.v_star == [3]  # only the pendant drops (1 -> 0)
        assert m.core(3) == 0
        assert m.core(2) == 2
        m.check()

    def test_remove_between_higher_and_lower_core(self):
        # removing an edge into a higher-core vertex only affects the low side
        m = OrderMaintainer(
            DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        )
        before2 = m.core(2)
        m.remove_edge(2, 3)
        assert m.core(2) == before2
        m.check()

    def test_missing_edge_raises(self):
        m = OrderMaintainer(DynamicGraph([(0, 1)]))
        with pytest.raises(KeyError):
            m.remove_edge(0, 9)

    def test_core_drops_at_most_one(self):
        g = DynamicGraph(erdos_renyi(30, 90, seed=1))
        m = OrderMaintainer(g)
        for e in list(g.edges())[:40]:
            before = m.cores()
            m.remove_edge(*e)
            after = m.cores()
            for u in before:
                assert 0 <= before[u] - after[u] <= 1

    def test_v_star_vertices_had_core_k(self):
        g = DynamicGraph(erdos_renyi(30, 90, seed=2))
        m = OrderMaintainer(g)
        for e in list(g.edges())[:40]:
            before = m.cores()
            k = min(before[e[0]], before[e[1]])
            stats = m.remove_edge(*e)
            assert all(before[w] == k for w in stats.v_star)

    def test_remove_to_empty(self):
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
        for e in [(0, 1), (1, 2), (0, 2)]:
            m.remove_edge(*e)
        assert all(m.core(u) == 0 for u in (0, 1, 2))
        m.check()

    def test_cascade_through_chain_of_triangles(self):
        # chain of triangles sharing vertices: breaking the 2-core cascades
        edges = []
        for i in range(0, 8, 2):
            edges += [(i, i + 1), (i + 1, i + 2), (i, i + 2)]
        m = OrderMaintainer(DynamicGraph(edges))
        assert all(m.core(u) == 2 for u in range(9))
        m.remove_edge(0, 1)
        # only the first triangle collapses (vertex 2 is shared)
        assert m.core(0) == 1 and m.core(1) == 1
        assert m.core(3) == 2
        m.check()


class TestRemoveStateUpkeep:
    def test_dropped_appended_to_lower_segment_tail(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2), (3, 4)])
        state = OrderState.from_graph(g)
        stats = order_remove_edge(state, 0, 1)
        seq1 = state.korder.sequence(1)
        # 3,4 were already in O_1; dropped vertices appended after them
        assert seq1[:2] == [3, 4] or seq1[0] in (3, 4)
        assert seq1[-len(stats.v_star):] == stats.v_star
        state.check_invariants()

    def test_mcd_wiped_for_dropped(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        state = OrderState.from_graph(g)
        for u in g.vertices():
            state.ensure_mcd(u)
        order_remove_edge(state, 0, 1)
        for u in (0, 1, 2):
            assert state.mcd[u] is None

    def test_dout_invalidated_around_vstar(self):
        g = DynamicGraph(erdos_renyi(30, 90, seed=3))
        state = OrderState.from_graph(g)
        e = next(iter(g.edges()))
        stats = order_remove_edge(state, *e)
        for w in stats.v_star:
            assert state.d_out.get(w) is None
        state.check_invariants()

    def test_remove_stats_v_plus_equals_v_star(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        state = OrderState.from_graph(g)
        stats = order_remove_edge(state, 0, 1)
        assert stats.v_plus == stats.v_star


def test_remove_heavy_sequence_stays_consistent():
    g = DynamicGraph(erdos_renyi(50, 160, seed=4))
    m = OrderMaintainer(g)
    edges = list(g.edges())
    for i, e in enumerate(edges[:120]):
        m.remove_edge(*e)
        if i % 30 == 0:
            m.check()
    m.check()
    assert_cores_match_bz(m)


def test_interleaved_insert_remove_consistency(rng):
    g = DynamicGraph(erdos_renyi(40, 80, seed=5))
    m = OrderMaintainer(g)
    absent = [e for e in erdos_renyi(40, 300, seed=6) if not g.has_edge(*e)]
    present = list(g.edges())
    for i in range(250):
        if absent and (not present or rng.random() < 0.5):
            e = absent.pop(rng.randrange(len(absent)))
            m.insert_edge(*e)
            present.append(e)
        else:
            e = present.pop(rng.randrange(len(present)))
            m.remove_edge(*e)
            absent.append(e)
        if i % 50 == 0:
            m.check()
    m.check()
