"""Property-based tests: arbitrary dynamic edge sequences.

Hypothesis drives random insert/remove traces against the Order and
Traversal maintainers simultaneously and checks every invariant after a
bounded number of operations.  A stateful machine additionally shrinks
failures to minimal traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.decomposition import core_decomposition
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer

N_VERTICES = 12


def all_possible_edges():
    return [(i, j) for i in range(N_VERTICES) for j in range(i + 1, N_VERTICES)]


@st.composite
def edge_trace(draw, max_ops=40):
    """A feasible trace of ('+'/'-', edge) operations over a small clique
    universe (inserts only absent edges, removes only present ones)."""
    pool = all_possible_edges()
    present = set()
    ops = []
    n = draw(st.integers(1, max_ops))
    for _ in range(n):
        absent = [e for e in pool if e not in present]
        choices = []
        if absent:
            choices.append("+")
        if present:
            choices.append("-")
        op = draw(st.sampled_from(choices))
        if op == "+":
            e = draw(st.sampled_from(absent))
            present.add(e)
        else:
            e = draw(st.sampled_from(sorted(present)))
            present.discard(e)
        ops.append((op, e))
    return ops


@given(edge_trace())
@settings(max_examples=60, deadline=None)
def test_order_maintainer_matches_bz_on_any_trace(ops):
    m = OrderMaintainer(DynamicGraph())
    for op, (u, v) in ops:
        if op == "+":
            m.insert_edge(u, v)
        else:
            m.remove_edge(u, v)
    m.check()


@given(edge_trace())
@settings(max_examples=40, deadline=None)
def test_traversal_matches_order_on_any_trace(ops):
    mo = OrderMaintainer(DynamicGraph())
    mt = TraversalMaintainer(DynamicGraph())
    for op, (u, v) in ops:
        if op == "+":
            so = mo.insert_edge(u, v)
            stt = mt.insert_edge(u, v)
        else:
            so = mo.remove_edge(u, v)
            stt = mt.remove_edge(u, v)
        # the candidate sets must agree as sets (algorithms find the same V*)
        assert sorted(map(str, so.v_star)) == sorted(map(str, stt.v_star))
    assert mo.cores() == mt.cores()


@given(edge_trace(max_ops=24), st.integers(1, 4), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_parallel_batches_match_bz(ops, workers, seed):
    """Group the trace into homogeneous runs (consecutive ops of one kind)
    and feed each as a parallel batch."""
    m = ParallelOrderMaintainer(
        DynamicGraph(), num_workers=workers, schedule="random", seed=seed
    )
    batch, kind = [], None
    for op, e in ops + [(None, None)]:
        if op != kind and batch:
            if kind == "+":
                m.insert_edges(batch)
            else:
                m.remove_edges(batch)
            batch = []
        if op is None:
            break
        kind = op
        batch.append(e)
    m.check()


@given(st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_core_numbers_are_order_independent(seed):
    """Inserting the same edge set in two different orders ends equal."""
    import random

    rng = random.Random(seed)
    edges = all_possible_edges()
    rng.shuffle(edges)
    chosen = edges[: rng.randint(3, 30)]
    m1 = OrderMaintainer(DynamicGraph())
    for e in chosen:
        m1.insert_edge(*e)
    shuffled = list(chosen)
    rng.shuffle(shuffled)
    m2 = OrderMaintainer(DynamicGraph())
    for e in shuffled:
        m2.insert_edge(*e)
    assert m1.cores() == m2.cores()


class MaintenanceMachine(RuleBasedStateMachine):
    """Stateful differential: OrderMaintainer vs incremental BZ oracle."""

    def __init__(self):
        super().__init__()
        self.m = OrderMaintainer(DynamicGraph())
        self.present = set()
        self.steps = 0

    @rule(data=st.data())
    def insert(self, data):
        absent = [e for e in all_possible_edges() if e not in self.present]
        if not absent:
            return
        e = data.draw(st.sampled_from(absent))
        self.m.insert_edge(*e)
        self.present.add(e)
        self.steps += 1

    @precondition(lambda self: self.present)
    @rule(data=st.data())
    def remove(self, data):
        e = data.draw(st.sampled_from(sorted(self.present)))
        self.m.remove_edge(*e)
        self.present.discard(e)
        self.steps += 1

    @invariant()
    def cores_match_oracle(self):
        fresh = core_decomposition(self.m.graph).core
        for u in self.m.graph.vertices():
            assert self.m.core(u) == fresh[u]

    @invariant()
    def mcd_dominates_core(self):
        for u in self.m.graph.vertices():
            # state maps are int-keyed; translate at the facade boundary
            cached = self.m.state.mcd.get(self.m.boundary.vertex_in(u))
            if cached is not None:
                assert cached >= self.m.core(u)


TestMaintenanceMachine = MaintenanceMachine.TestCase
TestMaintenanceMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
