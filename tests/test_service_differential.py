"""Differential test (ISSUE 2 satellite): an interleaved update/query
trace answered through engine snapshots must match replaying the same
committed prefix sequentially and querying BZ-recomputed cores — across
several seeds and both SimMachine schedules."""

import pytest

from repro.bench.workloads import trace_from_edges
from repro.core.decomposition import core_decomposition
from repro.core.queries import degeneracy, in_k_core, k_shell, shell_histogram
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.service import Engine


def expected_answer(graph, kind, args):
    """BZ-recomputed ground truth for one snapshot query kind."""
    core = core_decomposition(graph).core
    if kind == "core":
        return core.get(args[0])
    if kind == "in_k_core":
        return in_k_core(core, *args)
    if kind == "k_shell":
        return k_shell(core, *args)
    if kind == "degeneracy":
        return degeneracy(core)
    if kind == "shell_histogram":
        return shell_histogram(core)
    raise AssertionError(kind)


def run_differential(base_edges, seed, schedule, ops=160):
    initial, trace = trace_from_edges(
        base_edges, ops=ops, query_rate=0.3, seed=seed
    )
    eng = Engine(
        DynamicGraph(initial),
        max_batch=16,
        query_pressure=8,
        num_workers=4,
        schedule=schedule,
        seed=seed,
    )
    shadow = DynamicGraph(initial)
    queries = quarantined = 0
    for item in trace:
        if item[0] == "insert":
            _, u, v = item
            shadow.add_edge(u, v)
            eng.insert(u, v)
        elif item[0] == "remove":
            _, u, v = item
            shadow.remove_edge(u, v)
            eng.remove(u, v)
        else:
            _, kind, args = item
            # snapshot answers are against the *committed* graph: pending
            # ops are not applied until a cut, so the ground truth is a
            # from-scratch BZ decomposition of eng.graph, frozen before
            # the query (a pressure cut may advance the epoch after it).
            # copy() keeps isolated vertices, which stay at core 0 rather
            # than vanishing from the decomposition.
            committed = eng.graph.copy()
            want = expected_answer(committed, kind, args)
            r = eng.query(kind, *args)
            if r.status == "quarantined":
                # only legal quarantine here: core() of a vertex the
                # committed graph has not seen yet
                assert r.error["code"] == "unknown-vertex"
                assert kind == "core" and want is None
                quarantined += 1
            else:
                assert r.status == "committed"
                assert r.value == want, (kind, args, r.value, want)
            queries += 1
    # drain: every committed op must land, and the final state must match
    # a plain sequential replay of the full trace
    for r in eng.flush():
        assert r.status == "committed"
    assert sorted(eng.graph.edges()) == sorted(shadow.edges())
    assert eng.cores() == core_decomposition(shadow).core
    eng.check()
    c = eng.metrics()["counters"]
    assert c["admitted"] == c["committed"] + c["quarantined"] + c["timed_out"]
    assert c["timed_out"] == 0
    assert c["quarantined"] == quarantined
    return queries


@pytest.mark.parametrize("schedule", ["min-clock", "random"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_er_trace_matches_sequential_replay(seed, schedule):
    base = erdos_renyi(60, 220, seed=seed)
    queries = run_differential(base, seed, schedule)
    assert queries > 20  # the trace actually exercised the snapshot path


@pytest.mark.parametrize("schedule", ["min-clock", "random"])
def test_ba_trace_matches_sequential_replay(schedule):
    base = barabasi_albert(70, 3, seed=9)
    run_differential(base, seed=7, schedule=schedule)
