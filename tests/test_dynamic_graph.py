"""Unit tests for the dynamic graph substrate."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge


class TestConstruction:
    def test_empty(self):
        g = DynamicGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_duplicate_edges_deduped_on_bulk_load(self):
        g = DynamicGraph([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected_on_load(self):
        with pytest.raises(ValueError):
            DynamicGraph([(1, 1)])

    def test_hashable_vertex_types(self):
        g = DynamicGraph([("a", "b"), ("b", (1, 2))])
        assert g.has_edge("b", (1, 2))


class TestMutation:
    def test_add_edge_symmetric(self):
        g = DynamicGraph()
        g.add_edge(5, 7)
        assert g.has_edge(5, 7) and g.has_edge(7, 5)
        assert g.degree(5) == g.degree(7) == 1

    def test_add_existing_edge_raises(self):
        g = DynamicGraph([(0, 1)])
        with pytest.raises(ValueError):
            g.add_edge(1, 0)

    def test_add_self_loop_raises(self):
        g = DynamicGraph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_remove_edge(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_vertex(0)  # vertex survives edge removal

    def test_remove_missing_edge_raises(self):
        g = DynamicGraph([(0, 1)])
        with pytest.raises(KeyError):
            g.remove_edge(0, 2)

    def test_remove_vertex_removes_incident_edges(self):
        g = DynamicGraph([(0, 1), (0, 2), (1, 2)])
        g.remove_vertex(0)
        assert not g.has_vertex(0)
        assert g.num_edges == 1
        assert g.has_edge(1, 2)

    def test_add_vertex_idempotent(self):
        g = DynamicGraph()
        g.add_vertex(9)
        g.add_vertex(9)
        assert g.num_vertices == 1
        assert g.degree(9) == 0

    def test_insert_remove_roundtrip(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        g = DynamicGraph(edges)
        snapshot = {e for e in g.edges()}
        g.add_edge(1, 3)
        g.remove_edge(1, 3)
        assert {e for e in g.edges()} == snapshot


class TestQueries:
    def test_edges_iterates_each_once(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        g = DynamicGraph(edges)
        seen = list(g.edges())
        assert len(seen) == 4
        assert len(set(seen)) == 4
        assert all(u <= v for u, v in seen)

    def test_neighbors_is_live_set(self):
        g = DynamicGraph([(0, 1)])
        nbrs = g.neighbors(0)
        g.add_edge(0, 2)
        assert 2 in nbrs  # live view

    def test_average_degree(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        assert g.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert DynamicGraph().average_degree() == 0.0

    def test_contains_and_len(self):
        g = DynamicGraph([(0, 1)])
        assert 0 in g and 2 not in g
        assert len(g) == 2

    def test_connected_component(self):
        g = DynamicGraph([(0, 1), (1, 2), (5, 6)])
        assert g.connected_component(0) == {0, 1, 2}
        assert g.connected_component(5) == {5, 6}

    def test_subgraph_induced(self):
        g = DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)])
        s = g.subgraph([0, 1, 2])
        assert s.num_edges == 3
        assert not s.has_vertex(3)

    def test_subgraph_keeps_isolated_requested_vertices(self):
        g = DynamicGraph([(0, 1)])
        s = g.subgraph([0, 5])
        assert s.has_vertex(5)
        assert s.num_edges == 0


class TestCopyEquality:
    def test_copy_is_independent(self):
        g = DynamicGraph([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_equality(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        h = DynamicGraph([(1, 2), (0, 1)])
        assert g == h
        h.add_edge(0, 2)
        assert g != h

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DynamicGraph())


class TestCanonicalEdge:
    def test_orders_numeric(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_mixed_types_fall_back_to_repr(self):
        e1 = canonical_edge("x", 1)
        e2 = canonical_edge(1, "x")
        assert e1 == e2
