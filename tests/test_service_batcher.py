"""Tests for the factored-out coalescing buffer and the adaptive cut
policy (repro.service.batcher)."""

import pytest

from repro.service.batcher import AdaptiveBatcher, PendingOps


class TestPendingOps:
    def test_queue_and_cut(self):
        p = PendingOps()
        assert len(p) == 0 and p.kind is None
        assert p.classify("+", 1, 2) == ("queue", (1, 2))
        p.queue("+", (1, 2))
        p.queue("+", (2, 3))
        assert len(p) == 2 and p.kind == "+"
        assert (2, 1) in p  # canonicalized containment
        kind, edges = p.cut()
        assert kind == "+" and edges == [(1, 2), (2, 3)]
        assert len(p) == 0 and p.kind is None

    def test_coalesce_same_kind_duplicate(self):
        p = PendingOps()
        p.queue("+", (1, 2))
        assert p.classify("+", 2, 1) == ("coalesce", (1, 2))

    def test_cancel_opposite_on_queued_edge(self):
        p = PendingOps()
        p.queue("+", (1, 2))
        action, e = p.classify("-", 2, 1)
        assert action == "cancel" and e == (1, 2)
        p.drop(e)
        assert len(p) == 0 and p.kind is None  # empty run resets kind

    def test_conflict_opposite_on_fresh_edge(self):
        p = PendingOps()
        p.queue("+", (1, 2))
        assert p.classify("-", 3, 4) == ("conflict", (3, 4))

    def test_queue_wrong_kind_raises(self):
        p = PendingOps()
        p.queue("+", (1, 2))
        with pytest.raises(ValueError):
            p.queue("-", (3, 4))


class TestAdaptiveBatcher:
    def test_size_trigger(self):
        b = AdaptiveBatcher(max_batch=2)
        b.queue("+", (0, 1), now=0.0)
        assert b.cut_reason(0.0) is None
        b.queue("+", (1, 2), now=1.0)
        assert b.cut_reason(1.0) == "size"

    def test_time_trigger(self):
        b = AdaptiveBatcher(max_batch=100, max_delay=10.0)
        b.queue("+", (0, 1), now=5.0)
        assert b.cut_reason(14.9) is None
        assert b.cut_reason(15.0) == "time"
        # cutting resets the age clock
        b.cut()
        b.queue("+", (1, 2), now=20.0)
        assert b.cut_reason(25.0) is None

    def test_pressure_trigger(self):
        b = AdaptiveBatcher(max_batch=100, query_pressure=3)
        b.queue("+", (0, 1), now=0.0)
        for _ in range(2):
            b.note_query()
            assert b.cut_reason(0.0) is None
        b.note_query()
        assert b.cut_reason(0.0) == "pressure"
        b.cut()  # resets the query counter
        b.queue("+", (1, 2), now=0.0)
        assert b.cut_reason(0.0) is None

    def test_empty_run_never_cuts(self):
        b = AdaptiveBatcher(max_batch=1, max_delay=0.1, query_pressure=1)
        b.note_query()
        assert b.cut_reason(1e9) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatcher(max_batch=0)
        with pytest.raises(ValueError):
            AdaptiveBatcher(max_delay=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatcher(query_pressure=0)
