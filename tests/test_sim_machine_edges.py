"""SimMachine edge cases: cond_acquire wake ordering, deadlock payload
details, zero-worker / empty-batch runs, and wave-marker semantics."""
# lint: file-ok[RL001, RL002]  — edge-case workers intentionally misuse locks

from __future__ import annotations

import pytest

from repro.core.decomposition import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimDeadlockError, SimMachine, cond_acquire

C = CostModel()


# ----------------------------------------------------------------------
# cond_acquire wake ordering
# ----------------------------------------------------------------------
class TestCondAcquireWakeOrdering:
    def _contenders(self, order_log, head_start):
        """A holder plus two spinners; record who gets the lock when."""

        def holder():
            yield ("try", "L")
            yield ("tick", 10.0)
            yield ("release", "L")

        def spinner(name, delay):
            def body():
                if delay:
                    yield ("tick", delay)
                got = yield from cond_acquire("L", lambda: True)
                assert got
                order_log.append(name)
                yield ("release", "L")

            return body()

        return [holder(), spinner("slow", head_start), spinner("fast", 0.0)]

    def test_late_arriver_loses_to_waiting_spinner(self):
        """A worker still computing when the lock is released (head start
        past the release time) loses to the spinner already waiting, even
        though the late worker has the lower id."""
        log = []
        SimMachine(3).run(self._contenders(log, head_start=30.0))
        assert log == ["fast", "slow"]

    def test_tie_breaks_on_worker_id(self):
        """Equal clocks: the lower worker id is advanced first, so the
        first-listed spinner acquires first."""
        log = []

        def holder():
            yield ("try", "L")
            yield ("tick", 4.0)
            yield ("release", "L")

        def spinner(name):
            def body():
                got = yield from cond_acquire("L", lambda: True)
                assert got
                log.append(name)
                yield ("release", "L")

            return body()

        SimMachine(3).run([holder(), spinner("w1"), spinner("w2")])
        assert log == ["w1", "w2"]

    def test_waiters_drain_fifo_by_release_time(self):
        """Three queued waiters all eventually acquire, one per release,
        with no waiter starved."""
        log = []

        def holder():
            yield ("try", "L")
            yield ("tick", 3.0)
            yield ("release", "L")

        def spinner(i):
            def body():
                got = yield from cond_acquire("L", lambda: True)
                assert got
                log.append(i)
                yield ("tick", 1.0)
                yield ("release", "L")

            return body()

        SimMachine(4).run([holder()] + [spinner(i) for i in range(3)])
        assert sorted(log) == [0, 1, 2]
        assert len(set(log)) == 3


# ----------------------------------------------------------------------
# deadlock report payloads
# ----------------------------------------------------------------------
class TestDeadlockPayload:
    def _two_cycle(self):
        def w(mine, want):
            def body():
                yield ("try", mine)
                while not (yield ("try", want)):
                    yield ("spin",)

            return body()

        return [w("A", "B"), w("B", "A")]

    def test_cycle_edges_are_worker_key_holder_triples(self):
        machine = SimMachine(2, deadlock_window=20)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run(self._two_cycle())
        err = ei.value
        assert len(err.cycle) == 2
        for w, key, holder in err.cycle:
            # each edge is consistent with the holders table
            assert err.holders[key] == holder
            assert err.waiters[w] == key
            assert w != holder

    def test_uninvolved_worker_not_in_waiters(self):
        """A worker doing independent work never appears in the waits-for
        report."""

        def bystander():
            for _ in range(1000):
                yield ("tick", 1.0)

        machine = SimMachine(3, deadlock_window=20)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run(self._two_cycle() + [bystander()])
        err = ei.value
        assert 2 not in err.waiters
        assert set(err.holders) == {"A", "B"}

    def test_livelock_report_has_empty_cycle(self):
        """The stall fallback (no waits-for cycle) reports holders and
        waiters but an empty cycle list."""

        def holder():
            yield ("try", "H")
            while True:
                yield ("spin",)

        def waiter():
            while not (yield ("try", "H")):
                yield ("spin",)

        machine = SimMachine(2, max_stall_events=500)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run([holder(), waiter()])
        err = ei.value
        assert err.cycle == []
        assert err.holders == {"H": 0}
        assert err.waiters == {1: "H"}


# ----------------------------------------------------------------------
# zero-worker / empty-batch runs
# ----------------------------------------------------------------------
class TestEmptyRuns:
    def test_zero_bodies(self):
        rep = SimMachine(4).run([])
        assert rep.makespan == 0.0
        assert rep.events == 0
        assert rep.worker_clocks == []
        assert rep.wave_contention == {}

    def test_zero_bodies_random_schedule(self):
        rep = SimMachine(4, schedule="random", seed=9).run([])
        assert rep.makespan == 0.0

    def test_generator_that_yields_nothing(self):
        def idle():
            if False:
                yield  # pragma: no cover

        rep = SimMachine(2).run([idle(), idle()])
        assert rep.makespan == 0.0
        assert rep.events == 0

    @pytest.mark.parametrize("policy", ["fifo", "conflict-aware"])
    def test_maintainer_empty_batches(self, policy):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2)])
        m = ParallelOrderMaintainer(g, num_workers=4, policy=policy)
        ri = m.insert_edges([])
        rr = m.remove_edges([])
        assert ri.makespan == 0.0 and rr.makespan == 0.0
        assert ri.stats == [] and rr.stats == []
        fresh = core_decomposition(m.graph).core
        assert m.cores() == fresh


# ----------------------------------------------------------------------
# wave markers
# ----------------------------------------------------------------------
class TestWaveMarkers:
    def test_wave_marker_costs_nothing(self):
        def w():
            yield ("wave", 0)
            yield ("tick", 5.0)
            yield ("wave", 1)
            yield ("tick", 2.0)

        rep = SimMachine(1).run([w()])
        assert rep.makespan == 7.0
        assert rep.total_work == 7.0

    def test_wave_attribution_of_lock_traffic(self):
        def holder():
            yield ("wave", 0)
            yield ("try", "L")
            yield ("tick", 5.0)
            yield ("release", "L")

        def contender():
            yield ("wave", 1)
            yield ("tick", 1.0)
            while not (yield ("try", "L")):
                yield ("spin",)
            yield ("release", "L")

        rep = SimMachine(2).run([holder(), contender()])
        wc = rep.wave_contention
        assert wc[0]["lock_acquires"] == 1
        assert wc[1]["lock_acquires"] == 1
        assert wc[1]["lock_failures"] == rep.lock_failures > 0
        assert wc[1]["contended_time"] == rep.contended_time
        assert wc[0]["lock_failures"] == 0

    def test_no_waves_no_table(self):
        def w():
            yield ("try", "L")
            yield ("release", "L")

        rep = SimMachine(1).run([w()])
        assert rep.wave_contention == {}
