"""Crash-recovery tests (fault-plane ISSUE satellite): WAL record
semantics, checkpoint restore, ``Engine.from_journal`` restart, the
retry/abandon terminal states, and the snapshot-store rebind guard."""

import pytest

from repro.core.decomposition import core_decomposition
from repro.faults.plane import FaultSpec
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.parallel.batch import ParallelOrderMaintainer
from repro.service import Engine, EngineConfig
from repro.service.journal import EdgeJournal
from repro.service.requests import (
    E_RETRIES_EXHAUSTED,
    STATUS_ABANDONED,
    STATUS_COMMITTED,
    STATUS_QUARANTINED,
)
from repro.service.snapshots import SnapshotStore

from tests.conftest import assert_cores_match_bz


# ----------------------------------------------------------------------
# WAL record semantics
# ----------------------------------------------------------------------
def test_journal_replay_roundtrip():
    j = EdgeJournal()
    j.log_init([(0, 1), (1, 2)])
    j.log_intent("+", [(0, 2)], ["r0"])
    j.log_commit(1)
    j.log_checkpoint(1, [(0, 1), (0, 2), (1, 2)], {0: 2, 1: 2, 2: 2},
                     [0, 1, 2])
    j.log_intent("-", [(1, 2)], ["r1", "r2"], attempt=2)
    j.log_commit(2)
    r = j.replay()
    assert r.initial_edges == ((0, 1), (1, 2))
    assert [(b.kind, b.edges, b.ids, b.epoch, b.attempt) for b in r.committed] == [
        ("+", ((0, 2),), ("r0",), 1, 0),
        ("-", ((1, 2),), ("r1", "r2"), 2, 2),
    ]
    assert r.checkpoint is not None and r.checkpoint.epoch == 1
    assert r.checkpoint.order == (0, 1, 2)
    assert r.ids == {"r0", "r1", "r2"}
    assert r.aborted_intents == 0
    assert r.last_epoch == 2
    assert r.batches_after(1) == r.committed[1:]


def test_intent_without_commit_is_an_aborted_attempt():
    j = EdgeJournal()
    j.log_init([(0, 1)])
    j.log_intent("+", [(0, 2)], ["a"], attempt=0)   # crashed mid-apply
    j.log_intent("+", [(0, 2)], ["a"], attempt=1)   # retry, also crashed
    j.log_intent("+", [(0, 2)], ["a"], attempt=2)
    j.log_commit(1)
    j.log_intent("-", [(0, 1)], ["b"])              # trailing: process died
    r = j.replay()
    assert r.aborted_intents == 3
    assert len(r.committed) == 1 and r.committed[0].attempt == 2
    # the aborted ids are still remembered for duplicate detection
    assert r.ids == {"a", "b"}
    # the trailing intent never committed, so its edge survives
    assert j.final_edges() == [(0, 1), (0, 2)]


def test_commit_without_intent_is_corrupt():
    j = EdgeJournal()
    j.log_init([])
    j.append({"t": "commit", "epoch": 1})
    with pytest.raises(ValueError, match="without an intent"):
        j.replay()
    with pytest.raises(ValueError, match="unknown journal record"):
        j.append({"t": "bogus"})  # lint: ok[RL020]


def test_journal_serialization_roundtrips(tmp_path):
    j = EdgeJournal()
    j.log_init([(0, 1)])
    j.log_intent("+", [(1, 2)], ["x"])
    j.log_commit(1)
    clone = EdgeJournal.from_bytes(j.to_bytes())
    assert clone.to_bytes() == j.to_bytes()
    assert clone.digest() == j.digest()
    assert len(clone) == 3
    # file-backed journal: per-record flush, load() reads it back
    path = str(tmp_path / "wal.jsonl")
    disk = EdgeJournal(path)
    for rec in j.records:
        disk.append(dict(rec))
    disk.close()
    loaded = EdgeJournal.load(path)
    assert loaded.digest() == j.digest()
    # load() reopens in append mode: the journal keeps growing in place
    loaded.log_intent("-", [(0, 1)], ["y"])
    loaded.log_commit(2)
    loaded.close()
    assert len(EdgeJournal.load(path)) == 5


def test_engine_journals_every_commit(er_graph):
    eng = Engine(er_graph, max_batch=4)
    eng.insert(100, 101)
    eng.insert(101, 102)
    eng.remove(100, 101)  # cancels the pending insert: net no-op
    eng.insert(0, 100)
    eng.flush()
    r = eng.journal.replay()
    assert r.last_epoch == eng.epoch >= 1
    assert sorted(eng.journal.final_edges(), key=repr) == sorted(
        eng._graph_edges(), key=repr
    )
    # every committed batch's epoch is consecutive from 1
    assert [b.epoch for b in r.committed] == list(range(1, eng.epoch + 1))


# ----------------------------------------------------------------------
# checkpoint restore
# ----------------------------------------------------------------------
def test_checkpoint_restore_is_bit_identical():
    edges = erdos_renyi(40, 100, seed=11)
    m = ParallelOrderMaintainer(DynamicGraph(edges[:80]))
    m.insert_edges(edges[80:])
    cores, order = m.cores(), m.order_sequence()
    r = ParallelOrderMaintainer.from_checkpoint(
        DynamicGraph([e for e in m.graph.edges()]), dict(cores), list(order)
    )
    assert r.cores() == cores
    # not just the cores: the *order structure* is reproduced exactly
    assert r.order_sequence() == order
    r.check()
    # both evolve identically from the restore point
    extra = [(0, 200), (200, 201), (201, 0)]
    m.insert_edges(extra)
    r.insert_edges(extra)
    assert r.cores() == m.cores()
    assert r.order_sequence() == m.order_sequence()
    assert_cores_match_bz(r)


def test_checkpoint_restore_keeps_isolated_vertices():
    # removing a leaf's only edge leaves it in the order with core 0 but
    # absent from any edge list — the restore path must re-register it
    m = ParallelOrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2), (3, 0)]))
    m.remove_edges([(3, 0)])
    assert m.cores()[3] == 0
    r = ParallelOrderMaintainer.from_checkpoint(
        DynamicGraph([e for e in m.graph.edges()]),
        dict(m.cores()), list(m.order_sequence()),
    )
    assert r.cores() == m.cores()
    assert r.order_sequence() == m.order_sequence()
    assert 3 in r.cores() and r.cores()[3] == 0


# ----------------------------------------------------------------------
# engine restart from the journal
# ----------------------------------------------------------------------
def _drive(eng, edges, n=30):
    """Apply a deterministic insert/remove mix derived from ``edges``."""
    for i in range(n):
        u, v = edges[i % len(edges)]
        if i % 3 == 2:
            eng.remove(u, v)
        else:
            eng.insert(u + 1000, v + 2000 + i)
    eng.flush()


def test_from_journal_restart_matches_original(tmp_path):
    edges = erdos_renyi(30, 70, seed=5)
    cfg = EngineConfig(max_batch=4, checkpoint_every=2,
                       journal_path=str(tmp_path / "wal.jsonl"))
    with Engine(DynamicGraph(edges), cfg) as eng:
        _drive(eng, edges)

    for source in (cfg.journal_path, eng.journal.to_bytes(), eng.journal):
        back = Engine.from_journal(source, EngineConfig(max_batch=4))
        assert back.epoch == eng.epoch
        assert back.cores() == eng.cores()
        assert back.maintainer.order_sequence() == \
            eng.maintainer.order_sequence()


def test_restarted_engine_continues_identically(tmp_path):
    edges = erdos_renyi(30, 70, seed=6)
    cfg = EngineConfig(max_batch=4, checkpoint_every=3)
    eng = Engine(DynamicGraph(edges), cfg)
    _drive(eng, edges)
    back = Engine.from_journal(eng.journal.to_bytes(), cfg)
    # epoch numbering continues, not restarts
    assert back.epoch == eng.epoch
    for e in ((500, 501), (501, 502), (500, 502)):
        eng.insert(*e)
        back.insert(*e)
    eng.flush()
    back.flush()
    assert back.epoch == eng.epoch
    assert back.cores() == eng.cores()
    back.check()


def test_restart_restores_duplicate_id_detection():
    eng = Engine(DynamicGraph([(0, 1)]), max_batch=1)
    eng.insert(1, 2, id="mine")
    eng.flush()
    auto_ids = eng._seq
    back = Engine.from_journal(eng.journal.to_bytes(), EngineConfig(max_batch=1))
    resp = back.insert(2, 3, id="mine")
    assert resp.status == STATUS_QUARANTINED
    assert resp.error["code"] == "duplicate-id"
    # auto-assigned ids resume past the journaled ones
    assert back._seq >= auto_ids
    done = [r for r in [back.insert(2, 3), *back.flush()]
            if r.status == STATUS_COMMITTED]
    assert done and back.graph.has_edge(2, 3)


def test_restart_refuses_views_before_the_checkpoint():
    edges = erdos_renyi(25, 60, seed=7)
    eng = Engine(DynamicGraph(edges), max_batch=2, checkpoint_every=2)
    _drive(eng, edges, n=16)
    replay = eng.journal.replay()
    assert replay.checkpoint is not None and replay.checkpoint.epoch >= 2
    back = Engine.from_journal(eng.journal.to_bytes(),
                               EngineConfig(max_batch=2, checkpoint_every=2))
    assert back.snapshots.min_epoch == replay.checkpoint.epoch
    # epochs from the checkpoint on are answerable...
    assert back.view(replay.checkpoint.epoch).cores() is not None
    # ...pre-checkpoint history was compacted away
    with pytest.raises(ValueError):
        back.view(replay.checkpoint.epoch - 1)


def test_pending_uncut_operations_are_lost_by_design():
    eng = Engine(DynamicGraph([(0, 1), (1, 2), (0, 2)]), max_batch=100)
    eng.insert(5, 6)  # pending: never journaled
    assert eng.pending_ops() == 1
    back = Engine.from_journal(eng.journal.to_bytes(), EngineConfig())
    assert back.pending_ops() == 0
    assert not back.graph.has_edge(5, 6)


# ----------------------------------------------------------------------
# crash-mid-batch recovery and abandonment
# ----------------------------------------------------------------------
def test_crashed_batches_recover_and_commit():
    edges = erdos_renyi(40, 100, seed=1)
    spec = FaultSpec(crash_rate=0.02, max_crashes=6)
    faulty = Engine(DynamicGraph(edges[:80]),
                    EngineConfig(max_batch=4, faults=spec, seed=3,
                                 max_retries=10, checkpoint_every=3))
    clean = Engine(DynamicGraph(edges[:80]), EngineConfig(max_batch=4, seed=3))
    for u, v in edges[80:]:
        faulty.insert(u, v)
        clean.insert(u, v)
    for u, v in edges[:10]:
        faulty.remove(u, v)
        clean.remove(u, v)
    faulty.flush()
    clean.flush()
    f = faulty.metrics()["faults"]
    assert f["crashed_batches"] > 0, "schedule injected no crash; tune seed"
    assert f["recoveries"] == f["crashed_batches"]
    assert f["retries"] == f["crashed_batches"]  # nothing abandoned
    assert faulty.cores() == clean.cores()
    assert faulty.epoch == clean.epoch
    faulty.check()
    assert_cores_match_bz(faulty.maintainer)


def test_retries_exhausted_abandons_the_batch():
    # crash_rate=1 kills a worker at its first event, every attempt
    spec = FaultSpec(crash_rate=1.0, max_crashes=None)
    eng = Engine(DynamicGraph([(0, 1), (1, 2), (0, 2)]),
                 EngineConfig(max_batch=2, faults=spec, max_retries=2))
    eng.insert(0, 3)
    eng.insert(1, 3)  # size cut -> 3 attempts, all crash -> abandoned
    done = eng.take_completed()
    assert done and all(r.status == STATUS_ABANDONED for r in done)
    assert all(r.error["code"] == E_RETRIES_EXHAUSTED for r in done)
    # the committed state never saw the batch
    assert eng.epoch == 0
    assert not eng.graph.has_edge(0, 3)
    m = eng.metrics()
    assert m["counters"]["abandoned"] == 2
    assert m["faults"]["crashed_batches"] == 3   # initial try + 2 retries
    eng.metrics_collector.assert_invariant()
    # the engine is still serving: queries answer, clean ops commit
    assert eng.query("core", 0).value == 2
    eng2_resp = eng.query("degeneracy")
    assert eng2_resp.status == STATUS_COMMITTED and eng2_resp.value == 2


def test_abandoned_ops_keep_the_accounting_invariant():
    spec = FaultSpec(crash_rate=1.0, max_crashes=None)
    eng = Engine(DynamicGraph([(0, 1)]),
                 EngineConfig(max_batch=1, faults=spec, max_retries=0))
    eng.insert(0, 2)
    eng.remove(9, 10)           # quarantined (edge missing)
    eng.insert(3, 3)            # quarantined (self-loop)
    eng.query("core", 0)
    c = eng.metrics()["counters"]
    assert c["abandoned"] == 1 and c["quarantined"] == 2
    assert c["admitted"] == (c["committed"] + c["quarantined"]
                             + c["timed_out"] + c["abandoned"])
    assert c["in_flight"] == 0


def test_recovery_replays_through_the_latest_checkpoint():
    edges = erdos_renyi(40, 100, seed=2)
    spec = FaultSpec(crash_rate=0.015, max_crashes=4)
    eng = Engine(DynamicGraph(edges[:70]),
                 EngineConfig(max_batch=3, faults=spec, seed=9,
                              max_retries=8, checkpoint_every=2))
    for u, v in edges[70:]:
        eng.insert(u, v)
    eng.flush()
    assert eng.metrics()["faults"]["recoveries"] > 0
    # recovered state equals a from-scratch decomposition of the
    # journal's final edge set (the durability ground truth)
    oracle = core_decomposition(DictGraph(eng.journal.final_edges())).core
    got = eng.cores()
    assert all(got[u] == k for u, k in oracle.items())
    assert all(k == 0 for u, k in got.items() if u not in oracle)


def test_rebind_rejects_a_mismatched_maintainer(triangle_graph):
    eng = Engine(triangle_graph, max_batch=1)
    eng.insert(0, 3)
    wrong = ParallelOrderMaintainer(DynamicGraph([(7, 8)]))
    with pytest.raises(ValueError, match="disagrees with"):
        eng.snapshots.rebind(wrong)


def test_snapshot_store_epoch0_floor():
    m = ParallelOrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
    store = SnapshotStore(m, epoch0=5)
    assert store.epoch == 5 and store.min_epoch == 5
    assert store.view(5).core(0) == 2
    with pytest.raises(ValueError):
        store.view(4)
    assert store.commit({0}) == 6
