"""CLI entry point, cost model, report helpers, and regression cases."""

import subprocess
import sys

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.costs import CostModel
from repro.parallel.runtime import SimReport


class TestCLI:
    def _run(self, *args):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", *args],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_table1(self):
        out = self._run("table1", "--datasets", "BA")
        assert "paper_max_k" in out and "BA" in out

    def test_fig3(self):
        out = self._run("fig3", "--datasets", "roadNet-CA")
        assert "#" in out

    @pytest.mark.slow
    def test_fig4_and_table2(self):
        out = self._run(
            "fig4", "table2",
            "--datasets", "roadNet-CA",
            "--workers", "1", "4",
            "--batch", "60",
        )
        assert "OurI" in out and "JEI" in out
        assert "dataset" in out  # table2 rendering

    def test_fig5(self):
        out = self._run(
            "fig5", "--datasets", "roadNet-CA", "--workers", "4", "--batch", "50"
        )
        assert "OurI" in out

    @pytest.mark.slow
    def test_fig6_fig7(self):
        out = self._run(
            "fig6", "fig7",
            "--datasets", "roadNet-CA", "BA",
            "--workers", "4",
            "--batch", "60",
        )
        assert "ratios" in out
        assert "spread" in out

    def test_bad_experiment_rejected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "fig99"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode != 0


class TestCostModel:
    def test_defaults_positive(self):
        c = CostModel()
        for field in (
            "order_cmp", "adj_scan", "heap_op", "lock_acquire",
            "lock_release", "spin", "om_move", "om_relabel",
            "graph_mutate", "edge_overhead", "counter_op",
        ):
            assert getattr(c, field) > 0

    def test_scan_scales_with_degree(self):
        c = CostModel()
        assert c.scan(10) == 10 * c.per_neighbor()

    def test_neighbor_locking_raises_per_neighbor_cost(self):
        base = CostModel()
        locked = CostModel(neighbor_locking=True)
        assert locked.per_neighbor() == pytest.approx(
            base.per_neighbor() + base.lock_acquire + base.lock_release
        )

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().adj_scan = 5  # type: ignore[misc]


class TestCostModelFromEnv:
    def test_no_overrides_matches_defaults(self):
        assert CostModel.from_env(env={}) == CostModel()

    def test_numeric_override(self):
        c = CostModel.from_env(env={"REPRO_COST_OM_RELABEL": "40"})
        assert c.om_relabel == 40.0
        assert c.adj_scan == CostModel().adj_scan  # untouched

    def test_bool_override(self):
        c = CostModel.from_env(env={"REPRO_COST_NEIGHBOR_LOCKING": "true"})
        assert c.neighbor_locking is True
        c = CostModel.from_env(env={"REPRO_COST_NEIGHBOR_LOCKING": "0"})
        assert c.neighbor_locking is False

    def test_malformed_value_names_variable(self):
        with pytest.raises(ValueError, match="REPRO_COST_SPIN"):
            CostModel.from_env(env={"REPRO_COST_SPIN": "fast"})

    def test_reads_process_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_COST_CAS_FAIL", "2.5")
        assert CostModel.from_env().cas_fail == 2.5

    def test_maintainer_default_uses_env(self, monkeypatch):
        from repro.graph.dynamic_graph import DynamicGraph
        from repro.parallel.batch import ParallelOrderMaintainer

        monkeypatch.setenv("REPRO_COST_EDGE_OVERHEAD", "9.0")
        m = ParallelOrderMaintainer(DynamicGraph([(0, 1)]))
        assert m.costs.edge_overhead == 9.0


class TestSimReport:
    def test_speedup_vs_work(self):
        rep = SimReport(makespan=50.0, total_work=200.0)
        assert rep.speedup_vs_work == 4.0

    def test_speedup_empty(self):
        assert SimReport().speedup_vs_work == 1.0


class TestRegressions:
    def test_end_phase_append_race_config(self):
        """Regression for the k-order-validity race found in parallel
        removal (DESIGN.md 'Deviations'): this exact configuration
        produced an invalid order when dropped vertices were appended to
        O_{K-1} in the end phase instead of at drop time."""
        edges = erdos_renyi(60, 160, seed=1)
        base, dyn = edges[:-53], edges[-53:]
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=2, schedule="min-clock", seed=2
        )
        m.insert_edges(dyn)
        m.check()
        m.remove_edges(dyn)
        m.check()

    def test_lazy_dout_double_count_regression(self):
        """Regression: materializing d_out^+ *after* the edge insertion
        double-counted the new edge (ensure must run pre-mutation)."""
        from repro.core.maintainer import OrderMaintainer

        edges = erdos_renyi(60, 160, seed=1)
        m = OrderMaintainer(DynamicGraph(edges))
        # removal invalidates d_out around V*; the following insert used
        # to recompute post-insertion and over-promote
        removed = edges[:40]
        m.remove_edges(removed)
        m.insert_edges(removed)
        m.check()
