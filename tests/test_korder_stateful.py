"""Stateful property test: KOrder stays valid under arbitrary legal
promote/demote/move sequences.

The maintenance algorithms compose exactly three kinds of k-order
mutations; this machine drives random legal sequences of them and checks
structural validity after every step (segment membership, OM invariants,
status-parity) — independent of any maintenance logic.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.korder import KOrder


class KOrderMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ko = KOrder(capacity=4)  # tiny groups -> frequent relabels
        self.counter = 0
        for i in range(6):
            self.ko.add_vertex(f"v{i}", k=i % 3)
            self.counter += 1

    def _vertices(self):
        return sorted(self.ko.core, key=repr)

    @rule(k=st.integers(0, 3))
    def add_vertex(self, k):
        k = min(k, self.ko.max_level + 1)
        self.ko.add_vertex(f"v{self.counter}", k=k)
        self.counter += 1

    @rule(data=st.data())
    def promote(self, data):
        vs = self._vertices()
        u = data.draw(st.sampled_from(vs))
        self.ko.promote_head(u, self.ko.core[u] + 1)

    @rule(data=st.data())
    def promote_chain(self, data):
        vs = self._vertices()
        u = data.draw(st.sampled_from(vs))
        v = data.draw(st.sampled_from(vs))
        if u == v:
            return
        new_k = self.ko.core[u] + 1
        self.ko.promote_head(u, new_k)
        self.ko.promote_after(u, v, new_k)

    @rule(data=st.data())
    def demote(self, data):
        vs = [u for u in self._vertices() if self.ko.core[u] > 0]
        if not vs:
            return
        u = data.draw(st.sampled_from(vs))
        self.ko.demote_tail(u, self.ko.core[u] - 1)

    @rule(data=st.data())
    def move_within_segment(self, data):
        by_level = {}
        for u in self._vertices():
            by_level.setdefault(self.ko.core[u], []).append(u)
        levels = [k for k, vs in by_level.items() if len(vs) >= 2]
        if not levels:
            return
        k = data.draw(st.sampled_from(sorted(levels)))
        anchor, u = data.draw(
            st.sampled_from(
                [
                    (a, b)
                    for a in by_level[k]
                    for b in by_level[k]
                    if a != b
                ]
            )
        )
        self.ko.move_after_vertex(anchor, u)

    # ------------------------------------------------------------------
    @invariant()
    def structurally_sound(self):
        self.ko.om.check_invariants()

    @invariant()
    def segments_match_cores(self):
        for k in range(self.ko.max_level + 1):
            for u in self.ko.sequence(k):
                assert self.ko.core[u] == k

    @invariant()
    def statuses_even(self):
        for u in self.ko.core:
            assert self.ko.status(u) % 2 == 0

    @invariant()
    def full_sequence_is_total(self):
        seq = self.ko.full_sequence()
        assert sorted(seq, key=repr) == self._vertices()
        # cores non-decreasing along the sequence
        cores = [self.ko.core[u] for u in seq]
        assert cores == sorted(cores)

    @invariant()
    def precedes_agrees_with_sequence(self):
        seq = self.ko.full_sequence()
        if len(seq) >= 2:
            assert self.ko.precedes(seq[0], seq[-1])
            assert not self.ko.precedes(seq[-1], seq[0])


TestKOrderMachine = KOrderMachine.TestCase
TestKOrderMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
