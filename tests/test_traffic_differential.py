"""Differential satellite (ISSUE 10): the same trace *file* replayed on
the sim and thread monolith backends and on the process-sharded backend
must converge — identical final cores everywhere, byte-identical journal
digests where there is a single journal to compare, and digest-stable
double runs.  Replays are lossless (no SLO deadlines): deadline drops
are backend-timing-dependent by design, so they are exactly what a
bit-identity check must exclude."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.service import Engine, EngineConfig
from repro.service.sharding import ShardedEngine
from repro.traffic import Trace, generate_trace, replay
from repro.traffic.driver import cores_digest

LOSSLESS = {"update": None, "query": None}


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    tr = generate_trace("diurnal", ops=220, vertices=40, seed=13,
                        window=9000.0)
    path = tmp_path_factory.mktemp("traces") / "diurnal.jsonl"
    digest = tr.save(path)
    return path, digest


def replay_monolith(path, backend, mode="model"):
    trace = Trace.load(path)
    cfg = dict(max_batch=8, max_delay=None, num_workers=4,
               backend=backend, seed=13)
    if mode == "engine":
        cfg["window"] = trace.header.window
    eng = Engine(DynamicGraph(), EngineConfig(**cfg))
    with eng:
        return replay(eng, trace, mode=mode, slo=LOSSLESS)


def test_trace_digest_matches_file(trace_file):
    path, digest = trace_file
    assert Trace.load(path).digest() == digest


def test_sim_and_thread_monoliths_bit_identical(trace_file):
    path, _ = trace_file
    sim = replay_monolith(path, "sim")
    thread = replay_monolith(path, "thread")
    assert sim.invariant_ok and thread.invariant_ok
    assert sim.final_cores == thread.final_cores
    assert sim.cores_digest == thread.cores_digest
    # the WAL carries no timings: identical admission order + identical
    # cuts => byte-identical journals even across substrates
    assert sim.journal_digest == thread.journal_digest


def test_double_run_digest_stable_per_backend(trace_file):
    path, digest = trace_file
    for backend in ("sim", "thread"):
        a = replay_monolith(path, backend)
        b = replay_monolith(path, backend)
        assert a.trace_digest == b.trace_digest == digest
        assert a.cores_digest == b.cores_digest
        assert a.journal_digest == b.journal_digest


def test_engine_mode_matches_model_mode(trace_file):
    path, _ = trace_file
    model = replay_monolith(path, "sim", mode="model")
    engine = replay_monolith(path, "sim", mode="engine")
    assert engine.final_cores == model.final_cores
    assert engine.cores_digest == model.cores_digest


def test_process_sharded_matches_monolith(trace_file):
    path, digest = trace_file
    mono = replay_monolith(path, "sim")

    def sharded_run():
        trace = Trace.load(path)
        eng = ShardedEngine(DynamicGraph(), EngineConfig(
            shards=2, backend="process", max_batch=8, max_delay=None,
            num_workers=2, seed=13))
        with eng:
            return replay(eng, trace, mode="model", slo=LOSSLESS)

    a = sharded_run()
    b = sharded_run()
    assert a.invariant_ok
    assert a.trace_digest == digest
    assert a.final_cores == mono.final_cores
    assert cores_digest(a.final_cores) == mono.cores_digest
    assert a.cores_digest == b.cores_digest  # double-run stability


def test_mode_guards():
    tr = generate_trace("uniform", ops=20, vertices=10, seed=1)
    eng = Engine(DynamicGraph(), EngineConfig(max_batch=4))
    with pytest.raises(ValueError, match="window"):
        replay(eng, tr, mode="engine")  # engine mode needs config.window
    weng = Engine(DynamicGraph(), EngineConfig(max_batch=4,
                                               window=tr.header.window))
    with pytest.raises(ValueError, match="double-remove"):
        replay(weng, tr, mode="model")  # model mode would double-remove
    with pytest.raises(ValueError, match="unknown replay mode"):
        replay(eng, tr, mode="magic")
