"""Tests for parallel weighted maintenance (region-locking scheme)."""

import random

import pytest

from repro.weighted.graph import WeightedDynamicGraph
from repro.weighted.parallel import ParallelWeightedMaintainer


def tiered_network(seed=0, n=120):
    rng = random.Random(seed)
    edges = {}
    hubs = list(range(12))
    for i, u in enumerate(hubs):
        for v in hubs[i + 1 :]:
            if rng.random() < 0.6:
                edges[(u, v)] = rng.randint(4, 7)
    for u in range(12, n):
        for v in rng.sample(hubs, 2):
            edges[(min(u, v), max(u, v))] = rng.randint(1, 3)
        w = rng.randrange(12, n)
        if w != u:
            edges[(min(u, w), max(u, w))] = rng.randint(1, 2)
    return [(u, v, w) for (u, v), w in sorted(edges.items())]


class TestBatches:
    def test_insert_batch_correct(self):
        base = tiered_network(1)
        g = WeightedDynamicGraph(base[:-30])
        m = ParallelWeightedMaintainer(g, num_workers=4)
        res = m.insert_edges(base[-30:])
        m.check()
        assert len(res.stats) == 30
        assert res.makespan > 0

    def test_remove_batch_correct(self):
        base = tiered_network(2)
        m = ParallelWeightedMaintainer(WeightedDynamicGraph(base), num_workers=4)
        batch = [(u, v) for u, v, _ in base[::4]]
        m.remove_edges(batch)
        m.check()

    def test_roundtrip_restores_cores(self):
        base = tiered_network(3)
        m = ParallelWeightedMaintainer(WeightedDynamicGraph(base), num_workers=4)
        before = m.cores()
        batch_w = base[::5]
        m.remove_edges([(u, v) for u, v, _ in batch_w])
        m.insert_edges(batch_w)  # same weights back
        m.check()
        assert m.cores() == before

    def test_validation(self):
        m = ParallelWeightedMaintainer(
            WeightedDynamicGraph([(0, 1, 2)]), num_workers=2
        )
        with pytest.raises(ValueError):
            m.insert_edges([(0, 1, 3)])
        with pytest.raises(ValueError):
            m.insert_edges([(2, 3, 1), (3, 2, 1)])
        with pytest.raises(ValueError):
            m.insert_edges([(4, 4, 1)])
        with pytest.raises(KeyError):
            m.remove_edges([(7, 8)])

    def test_new_vertices_in_batch(self):
        m = ParallelWeightedMaintainer(WeightedDynamicGraph(), num_workers=2)
        m.insert_edges([("a", "b", 3), ("b", "c", 3), ("a", "c", 3)])
        m.check()
        assert m.core("a") == 6


class TestSchedulesAndScaling:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed):
        base = tiered_network(10 + seed)
        m = ParallelWeightedMaintainer(
            WeightedDynamicGraph(base),
            num_workers=4,
            schedule="random",
            seed=seed,
        )
        batch = base[::3]
        m.remove_edges([(u, v) for u, v, _ in batch])
        m.check()
        m.insert_edges(batch)
        m.check()

    def test_worker_count_invariance(self):
        base = tiered_network(20)
        batch = base[::4]
        cores = []
        for p in (1, 2, 6):
            m = ParallelWeightedMaintainer(WeightedDynamicGraph(base), num_workers=p)
            m.remove_edges([(u, v) for u, v, _ in batch])
            m.insert_edges(batch)
            cores.append(m.cores())
        assert all(c == cores[0] for c in cores)

    def test_parallel_speedup_on_localized_bands(self):
        base = tiered_network(30, n=400)
        batch = base[::4]
        t = {}
        for p in (1, 8):
            m = ParallelWeightedMaintainer(WeightedDynamicGraph(base), num_workers=p)
            t[p] = m.remove_edges([(u, v) for u, v, _ in batch]).makespan
            m.check()
        assert t[8] < t[1]

    def test_region_sizes_reported(self):
        base = tiered_network(40)
        m = ParallelWeightedMaintainer(WeightedDynamicGraph(base), num_workers=2)
        res = m.remove_edges([(u, v) for u, v, _ in base[::6]])
        sizes = res.region_sizes()
        assert len(sizes) == len(base[::6])
        assert all(s >= 0 for s in sizes)
