"""Differential tests: dict substrate vs. array substrate (PR 3 tentpole).

The array-backed :class:`DynamicGraph` (IntGraph + VertexInterner) must
be observationally identical to the dict-backed :class:`DictGraph` under
every maintenance engine: same core numbers, same k-orders where the
execution is deterministic, on random dynamic workloads — across both
simulated schedules and the real-thread backend.
"""

import pytest

from repro.core.maintainer import OrderMaintainer
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.threads import ThreadedOrderMaintainer

SEEDS = (0, 1, 2, 3)


def workload(seed):
    """A random base graph plus a spread dynamic batch."""
    if seed % 2:
        edges = erdos_renyi(60, 200, seed=40 + seed)
    else:
        edges = powerlaw_cluster(60, 3, 0.4, seed=40 + seed)
    return edges, edges[1::3]


def korders(m):
    ks = sorted(set(m.cores().values()))
    return {k: m.korder_sequence(k) for k in ks}


def assert_same_korder_partition(md, ma):
    kd, ka = korders(md), korders(ma)
    assert kd.keys() == ka.keys()
    for k in kd:
        assert sorted(kd[k]) == sorted(ka[k])


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_construction_korders_identical(seed):
    """BZ construction peels in (degree, id) order, independent of
    adjacency iteration order — the two substrates must produce
    bitwise-identical O_k sequences from the same edge list."""
    edges, _ = workload(seed)
    md = OrderMaintainer(DictGraph(edges))
    ma = OrderMaintainer(DynamicGraph(edges))
    assert md.cores() == ma.cores()
    assert korders(md) == korders(ma)


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_maintenance_cores_and_membership_identical(seed):
    """OI/OR traverse neighbors in substrate iteration order (hash-set
    vs. append-list), and the k-order is not unique (paper Section 4),
    so the within-k *sequences* may legitimately differ — but after
    every single edge op the cores, and after the batch the per-k O_k
    membership, must be identical, and both orders must pass every
    steady-state invariant."""
    edges, batch = workload(seed)
    md = OrderMaintainer(DictGraph(edges))
    ma = OrderMaintainer(DynamicGraph(edges))
    for u, v in batch:
        md.remove_edge(u, v)
        ma.remove_edge(u, v)
        assert md.cores() == ma.cores()
    md.check()
    ma.check()
    assert_same_korder_partition(md, ma)
    for u, v in batch:
        md.insert_edge(u, v)
        ma.insert_edge(u, v)
        assert md.cores() == ma.cores()
    md.check()
    ma.check()
    assert_same_korder_partition(md, ma)


@pytest.mark.parametrize("schedule", ["min-clock", "random"])
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_parallel_schedules_agree_across_substrates(schedule, seed):
    """Both simulated schedules, run over each substrate, end with the
    same core numbers (cores depend only on the final graph)."""
    edges, batch = workload(seed)
    ms = [
        ParallelOrderMaintainer(
            g, num_workers=4, schedule=schedule, seed=seed
        )
        for g in (DictGraph(edges), DynamicGraph(edges))
    ]
    for m in ms:
        m.remove_edges(batch)
        m.check()
    assert ms[0].cores() == ms[1].cores()
    for m in ms:
        m.insert_edges(batch)
        m.check()
    assert ms[0].cores() == ms[1].cores()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_thread_backend_agrees_across_substrates(seed):
    """Real threads over both substrates: interleavings differ, final
    cores cannot."""
    edges, batch = workload(seed)
    ms = [
        ThreadedOrderMaintainer(g, num_workers=4)
        for g in (DictGraph(edges), DynamicGraph(edges))
    ]
    for m in ms:
        m.remove_edges(batch)
        m.check()
    assert ms[0].cores() == ms[1].cores()
    for m in ms:
        m.insert_edges(batch)
        m.check()
    assert ms[0].cores() == ms[1].cores()


def test_non_int_vertices_through_full_stack():
    """The public API still accepts arbitrary hashable ids end to end."""
    edges, batch = workload(1)
    name = "v{}".format
    named = [(name(u), name(v)) for u, v in edges]
    named_batch = [(name(u), name(v)) for u, v in batch]
    mi = OrderMaintainer(DynamicGraph(edges))
    mn = OrderMaintainer(DynamicGraph(named))
    for (u, v), (nu, nv) in zip(batch, named_batch):
        mi.remove_edge(u, v)
        mn.remove_edge(nu, nv)
    mn.check()
    cores_i = mi.cores()
    cores_n = mn.cores()
    assert cores_n == {name(u): c for u, c in cores_i.items()}
