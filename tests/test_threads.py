"""Tests for the real-thread backend (protocol validation under the GIL's
genuine preemption)."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.parallel.threads import ThreadedOrderMaintainer, ThreadMachine
from tests.conftest import assert_cores_match_bz


class TestThreadMachine:
    def test_runs_generators(self):
        done = []

        def w(i):
            def body():
                yield ("tick", 1.0)
                done.append(i)

            return body()

        rep = ThreadMachine(2).run([w(0), w(1)])
        assert sorted(done) == [0, 1]
        assert rep.workers == 2
        assert rep.wall_s >= 0

    def test_real_mutual_exclusion(self):
        """Two threads incrementing a counter under a protocol lock never
        lose an update."""
        state = {"n": 0}

        def body():
            for _ in range(200):
                while not (yield ("try", "ctr")):
                    yield ("spin",)
                v = state["n"]
                yield ("tick", 0)  # deliberate preemption point
                state["n"] = v + 1
                yield ("release", "ctr")

        ThreadMachine(4).run([body() for _ in range(4)])
        assert state["n"] == 800

    def test_worker_exception_propagates(self):
        def bad():
            yield ("tick", 1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            ThreadMachine(1).run([bad()])


class TestThreadedMaintainer:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_remove_insert_roundtrip(self, workers):
        edges = erdos_renyi(100, 350, seed=1)
        m = ThreadedOrderMaintainer(DynamicGraph(edges), num_workers=workers)
        batch = edges[::3]
        m.remove_edges(batch)
        m.check()
        m.insert_edges(batch)
        m.check()
        assert_cores_match_bz(m)

    @pytest.mark.parametrize("trial", range(5))
    def test_repeated_trials_uniform_core_graph(self, trial):
        """BA = max contention (single level); repeat for varied
        preemption patterns."""
        edges = barabasi_albert(120, 4, seed=10 + trial)
        m = ThreadedOrderMaintainer(DynamicGraph(edges), num_workers=8)
        batch = edges[::4]
        m.remove_edges(batch)
        m.insert_edges(batch)
        m.check()

    def test_edge_counter_restored(self):
        edges = erdos_renyi(80, 240, seed=2)
        m = ThreadedOrderMaintainer(DynamicGraph(edges), num_workers=4)
        batch = edges[::4]
        m.remove_edges(batch)
        assert m.graph.num_edges == 240 - len(batch)
        m.insert_edges(batch)
        assert m.graph.num_edges == 240

    def test_batch_validation(self):
        m = ThreadedOrderMaintainer(DynamicGraph([(0, 1)]), num_workers=2)
        with pytest.raises(ValueError):
            m.insert_edges([(0, 1)])
        with pytest.raises(KeyError):
            m.remove_edges([(5, 6)])

    def test_matches_simulated_backend(self):
        from repro.parallel.batch import ParallelOrderMaintainer

        edges = erdos_renyi(90, 300, seed=3)
        batch = edges[::4]
        mt = ThreadedOrderMaintainer(DynamicGraph(edges), num_workers=4)
        mt.remove_edges(batch)
        mt.insert_edges(batch)
        ms = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=4)
        ms.remove_edges(batch)
        ms.insert_edges(batch)
        assert mt.cores() == ms.cores()
