"""Wait-free query plane: seqlock publisher/reader differential tests,
torn-read handling, the bounded-staleness pin contract (checkpoint
truncation and replica promotion), reader pools, and the query-pressure
feedback loop — every answer must be bit-identical to the engine's own
``SnapshotStore`` at the stamped epoch."""

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.replication import FollowerEngine, ReplicaSet
from repro.service.engine import Engine, EngineConfig
from repro.service.queryplane import (
    CORE_UNKNOWN,
    NO_EPOCH,
    QP_SEQ,
    QP_SEQ_ECHO,
    EpochPublisher,
    ReaderPool,
    SnapshotReader,
    raw_to_response,
)
from repro.service.requests import (
    E_BAD_REQUEST,
    E_EPOCH_TRUNCATED,
    E_EPOCH_UNAVAILABLE,
    E_UNKNOWN_QUERY,
    E_UNKNOWN_VERTEX,
    STATUS_COMMITTED,
    STATUS_QUARANTINED,
)
from repro.service.snapshots import QUERY_KINDS

ALL_KINDS = sorted(QUERY_KINDS)


def update_stream(seed, nv, nops):
    rng = random.Random(seed)
    ops, edges = [], set()
    while len(ops) < nops:
        u, v = rng.randrange(nv), rng.randrange(nv)
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in edges:
            if rng.random() < 0.35:
                ops.append(("remove", u, v))
                edges.discard(e)
        else:
            ops.append(("insert", u, v))
            edges.add(e)
    return ops


def query_args(kind, nv, rng):
    if kind == "core":
        return (rng.randrange(nv),)
    if kind == "in_k_core":
        return (rng.randrange(nv), rng.randrange(1, 4))
    if kind in ("k_core", "k_shell"):
        return (rng.randrange(1, 4),)
    return ()


def expected(view, kind, args):
    return QUERY_KINDS[kind](view, args)


class TestPublisherReaderDifferential:
    def test_every_kind_matches_engine_snapshot(self):
        eng = Engine(DynamicGraph(erdos_renyi(40, 120, seed=3)),
                     EngineConfig(max_batch=4))
        pub = eng.enable_queryplane()
        rng = random.Random(7)
        try:
            with SnapshotReader(pub.ctrl_name) as r:
                for op, u, v in update_stream(5, 40, 60):
                    getattr(eng, op)(u, v)
                    for kind in ALL_KINDS:
                        args = query_args(kind, 40, rng)
                        value, epoch, stale, err = r.answer(kind, args)
                        assert epoch >= eng.snapshots.min_epoch
                        view = eng.snapshots.view(epoch)
                        want = expected(view, kind, args)
                        if err is not None:
                            # the only legitimate refusal on this trace
                            assert kind == "core" and want is None
                            assert err[0] == E_UNKNOWN_VERTEX
                        else:
                            assert value == want
                        assert stale == 0  # nothing commits mid-answer
                eng.flush()
        finally:
            eng.close()
            pub.close()

    def test_fast_and_general_point_paths_agree(self):
        eng = Engine(DynamicGraph(erdos_renyi(25, 70, seed=1)), EngineConfig())
        pub = eng.enable_queryplane()
        try:
            with SnapshotReader(pub.ctrl_name) as r:
                eng.insert(0, 99)
                eng.flush()
                latest = r.latest_epoch()
                for kind, args in [("core", (0,)), ("core", (99,)),
                                   ("core", ("nope",)),
                                   ("in_k_core", (0, 1)),
                                   ("in_k_core", (0, 99)),
                                   ("in_k_core", ("nope", 2))]:
                    fast = r.answer(kind, args)            # unpinned path
                    slow = r.answer(kind, args, pin_epoch=latest)
                    assert fast == slow
        finally:
            eng.close()
            pub.close()

    def test_structured_refusals(self):
        with EpochPublisher() as pub:
            with SnapshotReader(pub.ctrl_name) as r:
                # nothing published yet
                value, epoch, _, err = r.answer("degeneracy", ())
                assert value is None and epoch == NO_EPOCH
                assert err[0] == E_EPOCH_UNAVAILABLE
                pub.publish(1, 0, {"a": 2, "b": 2})
                assert r.answer("nope", ())[3][0] == E_UNKNOWN_QUERY
                value, epoch, _, err = r.answer("core", ("zz",))
                assert err[0] == E_UNKNOWN_VERTEX and epoch == 1
                assert r.answer("in_k_core", ("a", "x"))[3][0] == E_BAD_REQUEST
                assert r.answer("core", ())[3][0] == E_BAD_REQUEST
                resp = raw_to_response(r.answer("core", ("zz",)))
                assert resp.status == STATUS_QUARANTINED
                assert resp.error["code"] == E_UNKNOWN_VERTEX

    def test_raw_envelope_to_response(self):
        with EpochPublisher() as pub:
            pub.publish(4, 2, {"x": 1})
            with SnapshotReader(pub.ctrl_name) as r:
                resp = raw_to_response(r.answer("core", ("x",)), id="r1")
                assert resp.status == STATUS_COMMITTED
                assert resp.value == 1 and resp.snapshot_epoch == 4
                assert resp.staleness_epochs == 0 and resp.id == "r1"


class TestSeqlock:
    def test_torn_read_retries_then_bounds(self):
        with EpochPublisher() as pub:
            pub.publish(1, 0, {"a": 1})
            active = pub._active
            hdr = pub._bufs[active].i64
            with SnapshotReader(pub.ctrl_name, max_spins=200) as r:
                assert r.answer("degeneracy", ())[0] == 1
                seq = hdr[QP_SEQ]
                hdr[QP_SEQ] = seq + 1  # odd: publisher "mid-write"
                with pytest.raises(RuntimeError, match="did not stabilize"):
                    r.answer("degeneracy", ())
                assert r.retries >= 199
                # a fast-path point read refuses to answer torn too: it
                # falls back to the general path, which spins and bounds
                with pytest.raises(RuntimeError, match="did not stabilize"):
                    r.answer("core", ("a",))
                hdr[QP_SEQ_ECHO] = seq + 2
                hdr[QP_SEQ] = seq + 2  # stable again (stamps in lockstep)
                assert r.answer("degeneracy", ())[0] == 1
                assert r.answer("core", ("a",))[0] == 1
                assert r.stats()["retries"] >= 398

    def test_echo_mismatch_detected_as_torn(self):
        """The post-payload ``QP_SEQ_ECHO`` bracket: a buffer whose main
        stamp looks stable but whose echo disagrees is refused as torn —
        on both the general and the fused point path."""
        with EpochPublisher() as pub:
            pub.publish(1, 0, {"a": 1})
            hdr = pub._bufs[pub._active].i64
            with SnapshotReader(pub.ctrl_name, max_spins=200) as r:
                assert r.answer("core", ("a",))[0] == 1
                echo = hdr[QP_SEQ_ECHO]
                hdr[QP_SEQ_ECHO] = echo + 2  # even, but out of step
                with pytest.raises(RuntimeError, match="did not stabilize"):
                    r.answer("degeneracy", ())
                with pytest.raises(RuntimeError, match="did not stabilize"):
                    r.answer("core", ("a",))
                hdr[QP_SEQ_ECHO] = echo  # back in lockstep
                assert r.answer("degeneracy", ())[0] == 1
                assert r.answer("core", ("a",))[0] == 1

    def test_regrow_keeps_readers_attached(self):
        with EpochPublisher(capacity=2, vocab_capacity=64) as pub:
            pub.publish(1, 0, {0: 1, 1: 1})
            with SnapshotReader(pub.ctrl_name) as r:
                assert r.answer("core", (0,))[0] == 1
                gen0 = r.stats()["generation"]
                cores = {i: 1 for i in range(40)}  # forces a regrow
                pub.publish(2, 0, cores, touched=cores)
                value, epoch, _, err = r.answer("shell_histogram", ())
                assert err is None and epoch == 2
                assert value == {1: 40}
                assert r.stats()["generation"] > gen0


class TestPinContract:
    def test_pin_previous_epoch_reports_staleness(self):
        with EpochPublisher() as pub:
            pub.publish(1, 0, {"a": 1})
            pub.publish(2, 0, {"a": 2}, touched=["a"])
            with SnapshotReader(pub.ctrl_name) as r:
                value, epoch, stale, err = r.answer("core", ("a",),
                                                    pin_epoch=1)
                assert (value, epoch, stale, err) == (1, 1, 1, None)
                value, epoch, stale, err = r.answer("core", ("a",),
                                                    pin_epoch=2)
                assert (value, epoch, stale, err) == (2, 2, 0, None)

    def test_pin_previous_epoch_survives_regrow(self):
        """A regrow re-stamps the fresh buffers with the previous
        epoch, so their payload must still *be* the previous epoch's:
        a reader pinned there keeps getting pre-grow answers — never
        the regrowing commit's values under the old stamp."""
        with EpochPublisher(capacity=2, vocab_capacity=64) as pub:
            pub.publish(1, 0, {"a": 1, "b": 1})
            with SnapshotReader(pub.ctrl_name) as r:
                assert r.answer("core", ("a",), pin_epoch=1)[:2] == (1, 1)
                cores = {"a": 5, "b": 1}
                cores.update({i: 2 for i in range(30)})  # forces a regrow
                pub.publish(2, 0, cores,
                            touched=["a"] + list(range(30)))
                assert r.answer("core", ("a",))[:2] == (5, 2)
                # epoch 1 still answers with its own values, not 5
                assert r.answer("core", ("a",), pin_epoch=1) == (1, 1, 1,
                                                                 None)
                # vertices first seen by the regrowing commit are
                # unknown at the pinned epoch, not leaked backwards
                value, epoch, _, err = r.answer("core", (0,), pin_epoch=1)
                assert value is None and epoch == 1
                assert err[0] == E_UNKNOWN_VERTEX
                # aggregates at the pin see only the pre-grow universe
                assert r.answer("shell_histogram", (),
                                pin_epoch=1)[0] == {1: 2}
                assert r.answer("shell_histogram", ())[0] == {1: 1, 2: 30,
                                                              5: 1}

    def test_pin_unbuffered_and_truncated(self):
        with EpochPublisher() as pub:
            for e in range(1, 6):
                pub.publish(e, 2, {"a": e}, touched=["a"])
            with SnapshotReader(pub.ctrl_name) as r:
                # within [min_epoch, latest) but no longer double-buffered
                assert r.answer("core", ("a",), pin_epoch=3)[3][0] \
                    == E_EPOCH_UNAVAILABLE
                # below the min_epoch floor: structured truncation refusal
                assert r.answer("core", ("a",), pin_epoch=1)[3][0] \
                    == E_EPOCH_TRUNCATED

    def test_pin_below_min_after_checkpoint_recovery(self, tmp_path):
        """A restarted engine rebinds the same buffers; pins below the
        checkpoint-truncated ``min_epoch`` draw the structured refusal."""
        path = str(tmp_path / "qp.journal")
        cfg = EngineConfig(max_batch=2, journal_path=path,
                           checkpoint_every=2)
        eng = Engine(DynamicGraph([(0, 1)]), cfg)
        pub = eng.enable_queryplane()
        try:
            for op, u, v in update_stream(11, 12, 20):
                getattr(eng, op)(u, v)
            eng.flush()
            eng.close()  # primary dies; journal + shared buffers survive

            eng = Engine.from_journal(path, cfg)
            eng.enable_queryplane(publisher=pub)
            assert eng.snapshots.min_epoch > 0
            with SnapshotReader(pub.ctrl_name) as r:
                raw = r.answer("degeneracy", (),
                               pin_epoch=eng.snapshots.min_epoch - 1)
                assert raw[3][0] == E_EPOCH_TRUNCATED
                # the live epoch still answers bit-identically
                value, epoch, _, err = r.answer("shell_histogram", ())
                assert err is None
                assert value == eng.snapshots.view(epoch).shell_histogram()
        finally:
            eng.close()
            pub.close()

    def test_pin_below_min_after_promotion(self):
        """A promoted replica's plane starts at the follower's adopted
        floor: epochs before it are truncated, not silently wrong."""
        edges = erdos_renyi(16, 40, seed=2)
        with ReplicaSet(DynamicGraph(edges), replicas=2, ship_lag=2,
                        max_batch=2, checkpoint_every=2) as rs:
            for op, u, v in update_stream(9, 16, 24):
                getattr(rs, op)(u, v)
            rs.flush()
            rs.sync()
            rs.kill_primary()  # promote_on_crash installs a new primary
            assert rs.primary is not None
            pub = rs.primary.enable_queryplane()
            try:
                floor = rs.primary.snapshots.min_epoch
                assert floor > 0
                with SnapshotReader(pub.ctrl_name) as r:
                    raw = r.answer("degeneracy", (), pin_epoch=floor - 1)
                    assert raw[3][0] == E_EPOCH_TRUNCATED
                    value, epoch, _, err = r.answer("shell_histogram", ())
                    assert err is None and epoch >= floor
                    assert value == rs.primary.snapshots.view(
                        epoch).shell_histogram()
            finally:
                pub.close()

    def test_follower_midstream_attach_moves_floor(self):
        eng = Engine(DynamicGraph([(0, 1)]),
                     EngineConfig(max_batch=2, checkpoint_every=2))
        try:
            for op, u, v in update_stream(13, 10, 16):
                getattr(eng, op)(u, v)
            eng.flush()
            recs = eng.journal.records
            cut = max(i for i, r in enumerate(recs)
                      if r["t"] == "checkpoint")
            assert cut > 0
            late = FollowerEngine(0, eng.config)
            late.receive(recs[cut:])  # attaches from the checkpoint
            late.replay()
            assert late.snapshots.min_epoch > 0
            pub = late.enable_queryplane()
            try:
                with SnapshotReader(pub.ctrl_name) as r:
                    raw = r.answer("degeneracy", (), pin_epoch=0)
                    assert raw[3][0] == E_EPOCH_TRUNCATED
                    value, epoch, _, err = r.answer("degeneracy", ())
                    assert err is None
                    assert value == late.view(epoch).degeneracy()
            finally:
                pub.close()
        finally:
            eng.close()


class TestEvictedEpochRebuild:
    def test_sampled_answers_verify_after_eviction(self):
        """Answers stamped with epochs that have since left the store's
        LRU window still verify bit-identical — the store rebuilds the
        view from history deltas, so the bench's equality check is exact
        arbitrarily far behind the head."""
        eng = Engine(DynamicGraph(erdos_renyi(20, 50, seed=4)),
                     EngineConfig(max_batch=1, snapshot_cache=2))
        pub = eng.enable_queryplane()
        rng = random.Random(3)
        sampled = []
        try:
            with SnapshotReader(pub.ctrl_name) as r:
                for op, u, v in update_stream(21, 20, 30):
                    getattr(eng, op)(u, v)
                    eng.flush()
                    kind = rng.choice(ALL_KINDS)
                    args = query_args(kind, 20, rng)
                    sampled.append((kind, args, r.answer(kind, args)))
            assert eng.snapshots.epoch > 10  # far past the 2-epoch cache
            for kind, args, (value, epoch, _, err) in sampled:
                view = eng.snapshots.view(epoch)  # rebuilt if evicted
                want = expected(view, kind, args)
                if err is not None:
                    assert kind == "core" and want is None
                else:
                    assert value == want
        finally:
            eng.close()
            pub.close()


class TestReaderPool:
    def test_pool_answers_match_engine(self):
        eng = Engine(DynamicGraph(erdos_renyi(30, 90, seed=6)),
                     EngineConfig())
        pub = eng.enable_queryplane()
        rng = random.Random(17)
        try:
            with ReaderPool(pub.ctrl_name, readers=2) as pool:
                for op, u, v in update_stream(8, 30, 12):
                    getattr(eng, op)(u, v)
                eng.flush()
                items = [
                    (k, query_args(k, 30, rng))
                    for k in ALL_KINDS for _ in range(6)
                ]
                raws = pool.query_many(items)  # raw envelopes, in order
                for (kind, args), (value, epoch, _, err) in zip(items, raws):
                    view = eng.snapshots.view(epoch)
                    want = expected(view, kind, args)
                    if err is not None:
                        assert kind == "core" and want is None
                    else:
                        assert value == want
                assert pool.reads_total() == len(items)
                assert sum(pool.counters()) == len(items)
                assert len(pool.stats()) == 2
        finally:
            eng.close()
            pub.close()

    def test_preload_run_partitions(self):
        with EpochPublisher() as pub:
            pub.publish(1, 0, {i: 1 + i % 3 for i in range(12)})
            with ReaderPool(pub.ctrl_name, readers=2) as pool:
                chunk = [("core", (i % 12,)) for i in range(40)]
                slices = [chunk[r::2] for r in range(2)]
                acks = pool.preload(slices)
                assert acks == [len(slices[0]), len(slices[1])]
                per_reader = pool.run(sample_every=4)
                assert len(per_reader) == 2
                for r, got in enumerate(per_reader):
                    assert [i for i, _ in got] == list(
                        range(0, len(slices[r]), 4))
                    for i, raw in got:
                        kind, args = slices[r][i]
                        assert raw[0] == 1 + args[0] % 3
                # rerunning the staged slice keeps counting reads
                pool.run(sample_every=4)
                assert pool.reads_total() == 2 * len(chunk)

    def test_close_survives_reader_error_reply(self):
        """A reader that replied ``('err', ...)`` must not wedge
        ``close()``: every process is still stopped and joined, and the
        shared counter segment is released."""
        with EpochPublisher() as pub:
            pub.publish(1, 0, {"a": 1})
            pool = ReaderPool(pub.ctrl_name, readers=2)
            # malformed frame: the worker's unpack raises, it replies err
            pool.dispatch([("core",)])
            pool.close()
            assert pool._counter is None
            assert all(not p.is_alive() for p in pool._procs)
            pool.close()  # idempotent after the error path too

    def test_pool_refusal_is_a_response(self):
        with EpochPublisher() as pub:
            pub.publish(3, 2, {"a": 1})
            with ReaderPool(pub.ctrl_name, readers=1) as pool:
                resp = pool.query("degeneracy", pin_epoch=1)
                assert resp.status == STATUS_QUARANTINED
                assert resp.error["code"] == E_EPOCH_TRUNCATED


class TestQueryPressureFeedback:
    def test_wait_free_reads_trigger_pressure_cut(self):
        """Satellite: the pool's shared counter feeds the batcher, so
        ``query_pressure`` cuts keep firing although the reads never
        enter the engine loop."""
        eng = Engine(DynamicGraph([(0, 1), (1, 2)]),
                     EngineConfig(max_batch=50, max_delay=10_000.0,
                                  query_pressure=5))
        pub = eng.enable_queryplane()
        try:
            with ReaderPool(pub.ctrl_name, readers=1) as pool:
                eng.bind_read_counter(pool.reads_total)
                eng.insert(2, 3)
                assert eng.snapshots.epoch == 0  # batched, not committed
                pool.query_many([("degeneracy", ())] * 6)
                eng.insert(3, 4)  # submit polls the counter -> cut
                assert eng.snapshots.epoch >= 1
                assert eng.metrics()["cuts"]["pressure"] >= 1
                eng.flush()
            eng.bind_read_counter(None)
        finally:
            eng.close()
            pub.close()

    def test_unbind_survives_counter_release(self):
        eng = Engine(DynamicGraph([(0, 1)]), EngineConfig())
        pub = eng.enable_queryplane()
        try:
            pool = ReaderPool(pub.ctrl_name, readers=1)
            eng.bind_read_counter(pool.reads_total)
            pool.close()
            eng.bind_read_counter(None)
            eng.insert(1, 2)  # must not touch the dead counter segment
            eng.flush()
            assert eng.snapshots.epoch >= 1
        finally:
            eng.close()
            pub.close()


class TestPublisherIncrementalMirror:
    def test_touched_updates_equal_full_rewrites(self):
        full = EpochPublisher()
        incr = EpochPublisher()
        eng = Engine(DynamicGraph(erdos_renyi(20, 50, seed=8)),
                     EngineConfig())
        try:
            eng.flush()
            view = eng.snapshots.view()
            full.publish(view.epoch, 0, view.mapping, None)
            incr.publish(view.epoch, 0, view.mapping, None)
            with SnapshotReader(full.ctrl_name) as rf, \
                    SnapshotReader(incr.ctrl_name) as ri:
                for op, u, v in update_stream(30, 20, 25):
                    getattr(eng, op)(u, v)
                    eng.flush()
                    view = eng.snapshots.view()
                    full.publish(view.epoch, 0, view.mapping, None)
                    incr.publish(view.epoch, 0, view.mapping,
                                 touched=[u, v] + list(view.mapping))
                    a = rf.answer("shell_histogram", ())
                    b = ri.answer("shell_histogram", ())
                    assert a == b and a[1] == view.epoch
                    assert a[0] == view.shell_histogram()
        finally:
            eng.close()
            full.close()
            incr.close()
