"""Tests for edge-list I/O and the dataset registry."""

import gzip

import pytest

from repro.core.decomposition import core_decomposition
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import (
    read_edge_list,
    read_temporal_edge_list,
    write_edge_list,
    write_temporal_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        edges = [(0, 1), (1, 2), (5, 9)]
        p = tmp_path / "g.txt"
        write_edge_list(p, edges)
        assert read_edge_list(p) == edges

    def test_comments_and_blank_lines(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# SNAP header\n% konect header\n\n0 1\n1 2\n")
        assert read_edge_list(p) == [(0, 1), (1, 2)]

    def test_dedupe_and_loops(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 0\n2 2\n1 2\n")
        assert read_edge_list(p) == [(0, 1), (1, 2)]

    def test_no_dedupe_mode(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 0\n")
        assert read_edge_list(p, dedupe=False) == [(0, 1), (1, 0)]

    def test_extra_columns_ignored(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 3.5 12345\n")
        assert read_edge_list(p) == [(0, 1)]

    def test_gzip_roundtrip(self, tmp_path):
        p = tmp_path / "g.txt.gz"
        write_edge_list(p, [(3, 4)])
        with gzip.open(p, "rt") as fh:
            assert fh.read() == "3 4\n"
        assert read_edge_list(p) == [(3, 4)]


class TestTemporalIO:
    def test_three_column(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("0 1 100\n1 2 50\n")
        out = read_temporal_edge_list(p)
        assert out == [(1, 2, 50), (0, 1, 100)]  # sorted by time

    def test_four_column_konect(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("0 1 1 100\n1 2 1 50\n")
        assert read_temporal_edge_list(p)[0] == (1, 2, 50)

    def test_self_loops_dropped(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("3 3 10\n0 1 5\n")
        assert read_temporal_edge_list(p) == [(0, 1, 5)]

    def test_write_roundtrip(self, tmp_path):
        p = tmp_path / "t.txt"
        data = [(0, 1, 5), (1, 2, 9)]
        write_temporal_edge_list(p, data)
        assert read_temporal_edge_list(p) == data


class TestDatasets:
    def test_sixteen_registered(self):
        assert len(DATASETS) == 16

    def test_kinds(self):
        assert len(dataset_names("temporal-sim")) == 4
        assert len(dataset_names("synthetic")) == 3
        assert len(dataset_names("real-sim")) == 9

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_deterministic_per_seed(self):
        a = DATASETS["ER"].edges(seed=1)
        b = DATASETS["ER"].edges(seed=1)
        assert a == b

    def test_roadnet_standin_max_core_three(self):
        g = load_dataset("roadNet-CA")
        assert core_decomposition(g).max_core == 3

    def test_ba_standin_single_core_value(self):
        g = load_dataset("BA")
        cores = core_decomposition(g).core
        assert len(set(cores.values())) == 1

    @pytest.mark.parametrize("name", ["ER", "RMAT", "wikitalk", "DBLP"])
    def test_standins_load_and_have_sane_shape(self, name):
        ds = DATASETS[name]
        g = ds.graph()
        assert g.num_vertices > 1000
        assert g.num_edges > 5000
        # average degree within ~4x of the paper's (a scale-aware match;
        # scaled-down stand-ins of very sparse graphs skew a bit denser
        # because isolated vertices vanish from edge-list construction)
        ratio = g.average_degree() / ds.paper.avg_deg
        assert 0.25 < ratio < 4.5

    def test_paper_stats_recorded(self):
        ds = DATASETS["livej"]
        assert ds.paper.n == 4_847_571
        assert ds.paper.max_k == 372
