"""Tests for the version-stamped priority queue (Appendix E)."""

from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.core.pqueue import VersionedPQ


def mk_state(edges=None):
    return OrderState.from_graph(
        DynamicGraph(edges or erdos_renyi(30, 80, seed=1))
    )


class TestBasics:
    def test_enqueue_dequeue_in_order(self):
        s = mk_state()
        ko = s.korder
        k = max(ko.core.values())
        seq = ko.sequence(k)
        pq = VersionedPQ(ko, k)
        for v in reversed(seq):
            pq.enqueue(v)
        fronts = []
        while len(pq):
            v = pq.front()
            fronts.append(v)
            pq.remove(v)
        assert fronts == seq

    def test_enqueue_idempotent(self):
        s = mk_state()
        ko = s.korder
        seq = ko.full_sequence()
        pq = VersionedPQ(ko, 0)
        pq.enqueue(seq[0])
        pq.enqueue(seq[0])
        assert len(pq) == 1

    def test_contains_and_remove(self):
        s = mk_state()
        ko = s.korder
        seq = ko.full_sequence()
        pq = VersionedPQ(ko, 0)
        pq.enqueue(seq[0])
        assert seq[0] in pq
        pq.remove(seq[0])
        assert seq[0] not in pq
        pq.remove(seq[0])  # idempotent
        assert pq.front() is None

    def test_recorded_status_snapshot(self):
        s = mk_state()
        ko = s.korder
        v = ko.full_sequence()[0]
        pq = VersionedPQ(ko, ko.core[v])
        pq.enqueue(v)
        s0 = pq.recorded_status(v)
        assert s0 == ko.status(v)


class TestStaleness:
    def test_status_mismatch_detectable_after_move(self):
        """A queued vertex that gets re-threaded has a changed status
        counter — the dequeuer's check (Algorithm 13 line 6)."""
        s = mk_state()
        ko = s.korder
        k = max(ko.core.values())
        seq = ko.sequence(k)
        assert len(seq) >= 3
        pq = VersionedPQ(ko, k)
        for v in seq:
            pq.enqueue(v)
        ko.move_after_vertex(seq[-1], seq[0])  # move the front to the back
        assert ko.status(seq[0]) != pq.recorded_status(seq[0])

    def test_update_version_refreshes_snapshots(self):
        s = mk_state()
        ko = s.korder
        k = max(ko.core.values())
        seq = ko.sequence(k)
        pq = VersionedPQ(ko, k)
        for v in seq:
            pq.enqueue(v)
        ko.move_after_vertex(seq[-1], seq[0])
        pq.ver = None
        n = pq.update_version()
        assert n == len(seq)
        assert pq.recorded_status(seq[0]) == ko.status(seq[0])
        # front now agrees with the new order
        fronts = []
        while len(pq):
            v = pq.front()
            fronts.append(v)
            pq.remove(v)
        assert fronts == ko.sequence(k)

    def test_enqueue_detects_version_skew(self):
        s = mk_state()
        ko = s.korder
        seq = ko.full_sequence()
        pq = VersionedPQ(ko, 0)
        pq.ver = pq.ver - 1 if pq.ver else None  # simulate a missed relabel
        pq.enqueue(seq[0])
        assert pq.ver is None  # flagged for delayed re-version

    def test_relabel_storm_then_update(self):
        """Force OM relabels while vertices sit in the queue; after
        update_version the queue must agree with the true order."""
        s = mk_state([(i, i + 1) for i in range(40)])  # all core 1
        ko = s.korder
        seq = ko.sequence(1)
        pq = VersionedPQ(ko, 1)
        for v in seq[:10]:
            pq.enqueue(v)
        # hammer insertions at the segment head to trigger splits/rebalances
        for i in range(200):
            s.ensure_vertex(f"x{i}")
        ver_before = pq.ver
        if ko.version != ver_before:
            pq.ver = None
            pq.update_version()
        fronts = []
        while len(pq):
            v = pq.front()
            fronts.append(v)
            pq.remove(v)
        true_order = [v for v in ko.sequence(1) if v in set(seq[:10])]
        assert fronts == true_order


class TestRemovedShim:
    def test_parallel_pqueue_import_fails_loudly(self):
        """Mutant guard (ISSUE 10 satellite): the deprecated
        ``repro.parallel.pqueue`` shim is gone.  The old import path must
        raise ``ModuleNotFoundError`` — a silent resurrection (e.g. a
        stray pqueue.py reappearing under repro/parallel/) would revive
        the duplicate-implementation hazard the dedup removed."""
        import importlib
        import sys

        import pytest

        sys.modules.pop("repro.parallel.pqueue", None)
        with pytest.raises(ModuleNotFoundError, match="pqueue"):
            importlib.import_module("repro.parallel.pqueue")
        # the package itself and the real home are untouched
        importlib.import_module("repro.parallel")
        from repro.core.pqueue import VersionedPQ as real

        assert real is VersionedPQ
