"""Tests for the core-number history tracker."""

import random

import pytest

from repro.core.history import CoreHistory
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi


def fresh(edges=((0, 1), (1, 2))):
    return CoreHistory(OrderMaintainer(DynamicGraph(list(edges))))


class TestRecording:
    def test_initial_state_at_time_zero(self):
        h = fresh()
        assert h.core_at(0, 0) == 1
        assert h.core_at(1, 0) == 1

    def test_unknown_vertex(self):
        h = fresh()
        assert h.core_at("ghost", 0) is None

    def test_insert_records_delta(self):
        h = fresh()
        h.insert_edge(0, 2)  # closes the triangle: all rise to 2
        assert h.t == 1
        assert h.core_at(1, 0) == 1
        assert h.core_at(1, 1) == 2

    def test_remove_records_delta(self):
        h = fresh([(0, 1), (1, 2), (0, 2)])
        h.remove_edge(0, 1)
        assert h.core_at(2, 0) == 2
        assert h.core_at(2, 1) == 1

    def test_series(self):
        h = fresh()
        h.insert_edge(0, 2)
        h.remove_edge(0, 2)
        assert h.series(0) == [(0, 1), (1, 2), (2, 1)]

    def test_new_vertex_appears_with_first_edge(self):
        h = fresh()
        h.insert_edge(2, 99)
        assert h.core_at(99, 0) is None
        assert h.core_at(99, 1) == 1

    def test_markers(self):
        h = fresh()
        h.record_marker("start")
        h.insert_edge(0, 2)
        h.record_marker("after-close")
        assert h.markers() == [(0, "start"), (1, "after-close")]


class TestQueries:
    def test_changed_between(self):
        h = fresh()
        h.insert_edge(0, 2)          # t=1: all rise
        h.insert_edge(0, 3)          # t=2: 3 appears at core 1
        assert h.changed_between(0, 1) == {0, 1, 2}
        assert 3 in h.changed_between(1, 2)
        assert h.changed_between(2, 2) == set()

    def test_changed_between_excludes_noop_touches(self):
        h = fresh([(0, 1), (1, 2), (0, 2), (5, 6)])
        h.insert_edge(2, 5)  # endpoints recorded but cores unchanged
        assert h.changed_between(0, 1) == set()

    def test_shell_size_at(self):
        h = fresh()
        assert h.shell_size_at(1, 0) == 3
        h.insert_edge(0, 2)
        assert h.shell_size_at(1, 1) == 0
        assert h.shell_size_at(2, 1) == 3
        # history at time 0 unchanged
        assert h.shell_size_at(1, 0) == 3


class TestConsistency:
    @pytest.mark.parametrize("maintainer_cls", [OrderMaintainer, TraversalMaintainer])
    def test_random_stream_history_matches_final(self, maintainer_cls, rng):
        base = erdos_renyi(30, 70, seed=1)
        h = CoreHistory(maintainer_cls(DynamicGraph(base)))
        present = set(base)
        absent = [e for e in erdos_renyi(30, 250, seed=2) if e not in present]
        for _ in range(120):
            if absent and (not present or rng.random() < 0.5):
                e = absent.pop(rng.randrange(len(absent)))
                h.insert_edge(*e)
                present.add(e)
            else:
                e = sorted(present)[rng.randrange(len(present))]
                h.remove_edge(*e)
                present.discard(e)
                absent.append(e)
        h.check()

    def test_replay_matches_recorded_history(self, rng):
        """Replaying the stream to time t and recomputing must equal the
        recorded history at t — the core guarantee of delta encoding."""
        from repro.core.decomposition import core_decomposition

        base = erdos_renyi(25, 60, seed=3)
        ops = []
        present = set(base)
        absent = [e for e in erdos_renyi(25, 200, seed=4) if e not in present]
        for _ in range(60):
            if absent and (not present or rng.random() < 0.5):
                e = absent.pop(rng.randrange(len(absent)))
                ops.append(("+", e))
                present.add(e)
            else:
                e = sorted(present)[rng.randrange(len(present))]
                ops.append(("-", e))
                present.discard(e)
                absent.append(e)

        h = CoreHistory(OrderMaintainer(DynamicGraph(base)))
        for kind, e in ops:
            (h.insert_edge if kind == "+" else h.remove_edge)(*e)

        for t_check in (0, 15, 37, 60):
            g = DynamicGraph(base)
            for kind, e in ops[:t_check]:
                if kind == "+":
                    g.add_edge(*e)
                else:
                    g.remove_edge(*e)
            truth = core_decomposition(g).core
            for u in g.vertices():
                assert h.core_at(u, t_check) == truth[u], (t_check, u)
