"""Negative control: the locking protocol is load-bearing.

The simulated machine serializes individual steps, so one could suspect
the parallel algorithms are "accidentally correct" regardless of their
locks.  This test strips mutual exclusion (every CAS 'succeeds') and
shows the algorithms then corrupt shared state under a random schedule —
i.e. logical races across yield points are real, and the paper's locks
are what prevent them.
"""

import random

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.parallel.batch import partition_batch
from repro.parallel.costs import CostModel
from repro.parallel.parallel_insert import insert_worker
from repro.parallel.parallel_remove import remove_worker


def run_lockless(worker_factory, edges, batch, workers, seed, register):
    """Drive workers under a random schedule with every lock request
    granted unconditionally (no mutual exclusion).  Returns an error tag
    when shared state ends up corrupted."""
    state = OrderState.from_graph(DynamicGraph(edges))
    if register:
        for u, v in batch:
            state.ensure_vertex(u)
            state.ensure_vertex(v)
    chunks = partition_batch(batch, workers)
    outs = [[] for _ in chunks]
    gens = [
        worker_factory(state, chunk, CostModel(), out)
        for chunk, out in zip(chunks, outs)
    ]
    rng = random.Random(seed)
    vals = [None] * len(gens)
    done = [False] * len(gens)
    while not all(done):
        i = rng.choice([j for j in range(len(gens)) if not done[j]])
        try:
            ev = gens[i].send(vals[i])
            vals[i] = None
        except StopIteration:
            done[i] = True
            continue
        except Exception as exc:  # noqa: BLE001 - corruption manifests as crashes too
            return ("crash", repr(exc))
        if ev[0] == "try":
            vals[i] = True  # grant every lock: no exclusion
    fresh = core_decomposition(state.graph).core
    for u in state.graph.vertices():
        if state.korder.core[u] != fresh[u]:
            return ("wrong-cores", u)
    try:
        state.check_invariants()
    except AssertionError as exc:
        return ("invariant", str(exc)[:80])
    return None


def test_lockless_insertion_breaks():
    edges = erdos_renyi(40, 120, seed=3)
    base, batch = edges[:-40], edges[-40:]
    failures = [
        run_lockless(insert_worker, base, batch, 4, seed, register=True)
        for seed in range(25)
    ]
    assert any(failures), (
        "lockless parallel insertion never corrupted state — the test "
        "harness is no longer exercising real interleavings"
    )


def test_lockless_removal_breaks():
    edges = erdos_renyi(40, 140, seed=4)
    batch = edges[-50:]
    failures = [
        run_lockless(remove_worker, edges, batch, 4, seed, register=False)
        for seed in range(25)
    ]
    assert any(failures)


def test_locked_versions_survive_same_schedules():
    """Sanity companion: with real lock semantics the very same batches
    under the same random scheduler are always correct (this is what
    tests/test_parallel_differential.py checks at scale)."""
    from repro.parallel.batch import ParallelOrderMaintainer

    edges = erdos_renyi(40, 120, seed=3)
    base, batch = edges[:-40], edges[-40:]
    for seed in range(5):
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=4, schedule="random", seed=seed
        )
        m.insert_edges(batch)
        m.check()
