"""Tests for joint (batched) Traversal group processing."""

import random

import pytest

from repro.baselines.joint_traversal import insert_group, remove_group
from repro.core.decomposition import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, lattice, rmat


def fresh(edges):
    g = DynamicGraph(edges)
    return g, dict(core_decomposition(g).core)


class TestInsertGroup:
    def test_single_edge_matches_bz(self):
        g, core = fresh([(0, 1), (1, 2)])
        stats = insert_group(g, core, [(0, 2)])
        assert core == core_decomposition(g).core
        assert sorted(stats.changed) == [0, 1, 2]

    def test_multi_edge_core_jump_by_two(self):
        """A batch can raise a core number by more than one — the reason
        joint processing must iterate to a fixpoint."""
        # path 0-1-2-3-4; add edges making {0,1,2,3} a clique: cores 1 -> 3
        g, core = fresh([(0, 1), (1, 2), (2, 3), (3, 4)])
        batch = [(0, 2), (0, 3), (1, 3)]
        insert_group(g, core, batch)
        assert core == core_decomposition(g).core
        assert core[0] == 3

    def test_new_vertices(self):
        g, core = fresh([(0, 1)])
        insert_group(g, core, [(5, 6), (6, 7), (5, 7)])
        assert core[5] == core[6] == core[7] == 2
        assert core == core_decomposition(g).core

    def test_one_flood_shared_across_grid_edges(self):
        """The whole point: k edges into the same huge subcore must cost
        far less than k separate traversals."""
        from repro.core.traversal import traversal_insert_edge

        base = lattice(25, 25, diag_fraction=0.0)
        rng = random.Random(1)
        # candidate diagonals not in the grid
        batch = []
        for r in range(0, 20, 3):
            batch.append((r * 25 + r, (r + 1) * 25 + r + 1))
        g1, c1 = fresh(base)
        joint = insert_group(g1, c1, batch)

        g2, c2 = fresh(base)
        per_edge_work = 0.0
        for e in batch:
            per_edge_work += traversal_insert_edge(g2, c2, *e).work
        assert c1 == c2 == core_decomposition(g1).core
        assert joint.work < per_edge_work / 2

    def test_stats_duck_type(self):
        g, core = fresh([(0, 1), (1, 2)])
        stats = insert_group(g, core, [(0, 2)])
        assert stats.v_star == stats.changed
        assert stats.v_plus == stats.changed
        assert stats.edges == 1
        assert stats.work > 0


class TestRemoveGroup:
    def test_single_edge_matches_bz(self):
        g, core = fresh([(0, 1), (1, 2), (0, 2)])
        stats = remove_group(g, core, [(0, 1)])
        assert core == core_decomposition(g).core
        assert sorted(stats.changed) == [0, 1, 2]

    def test_multi_edge_core_drop_by_two(self):
        # K4: cores 3; removing two edges at vertex 0 drops it to 1
        g, core = fresh([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        remove_group(g, core, [(0, 1), (0, 2)])
        assert core == core_decomposition(g).core
        assert core[0] == 1

    def test_remove_whole_graph(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        g, core = fresh(edges)
        remove_group(g, core, edges)
        assert all(v == 0 for v in core.values())

    def test_cross_level_cascade(self):
        """Drops at a high level must trigger re-checks of the dropped
        vertices at their new level."""
        rng = random.Random(3)
        edges = rmat(7, 4, seed=3)
        g, core = fresh(edges)
        batch = rng.sample(edges, len(edges) // 2)
        remove_group(g, core, batch)
        assert core == core_decomposition(g).core


@pytest.mark.parametrize("seed", range(6))
def test_random_mixed_groups(seed):
    rng = random.Random(seed)
    edges = erdos_renyi(80, 300, seed=seed)
    g, core = fresh(edges)
    present = set(edges)
    for _ in range(6):
        if rng.random() < 0.5 and len(present) > 30:
            batch = rng.sample(sorted(present), 25)
            remove_group(g, core, batch)
            present.difference_update(batch)
        else:
            absent = [
                (u, v)
                for u in range(80)
                for v in range(u + 1, 80)
                if (u, v) not in present
            ]
            batch = rng.sample(absent, 25)
            insert_group(g, core, batch)
            present.update(batch)
        assert core == core_decomposition(g).core
