"""Scheduling-policy tests: plan mechanics, schedule-independence of the
final cores, per-wave contention metrics, and race-detector cleanliness
of the scheduled paths."""

from __future__ import annotations

import random

import pytest

from repro.analysis import RaceDetector
from repro.baselines.scheduling import lpt_assign, lpt_makespan
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.parallel.batch import ParallelOrderMaintainer, partition_batch
from repro.parallel.scheduling import (
    POLICIES,
    ConflictAwarePolicy,
    FifoPolicy,
    LptPolicy,
    chunk_contiguous,
    get_policy,
)
from repro.parallel.stream import StreamProcessor
from repro.parallel.threads import ThreadedOrderMaintainer

from tests.conftest import (
    assert_cores_match_bz,
    small_graph_families,
    split_edges,
)


def canon(edges):
    return sorted(tuple(sorted(e)) for e in edges)


# ----------------------------------------------------------------------
# plan mechanics
# ----------------------------------------------------------------------
class TestPolicyRegistry:
    def test_names(self):
        assert set(POLICIES) == {"fifo", "lpt", "conflict-aware"}

    def test_get_policy_resolves_names_and_instances(self):
        assert isinstance(get_policy("fifo"), FifoPolicy)
        assert isinstance(get_policy("conflict-aware"), ConflictAwarePolicy)
        p = LptPolicy()
        assert get_policy(p) is p

    def test_get_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            get_policy("mystery")

    def test_partition_batch_is_chunk_contiguous(self):
        # long-standing import surface kept alive
        assert partition_batch is chunk_contiguous


class TestChunkContiguous:
    def test_near_equal_chunks(self):
        chunks = chunk_contiguous(list(range(10)), 4)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]
        assert [x for c in chunks for x in c] == list(range(10))

    def test_empty_chunks_dropped(self):
        assert chunk_contiguous([1, 2], 5) == [[1], [2]]

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            chunk_contiguous([1], 0)


class TestPlans:
    EDGES = [(0, 1), (0, 2), (0, 3), (4, 5), (6, 7), (8, 9)]

    def test_fifo_matches_partition(self):
        plan = FifoPolicy().plan(self.EDGES, 3)
        assert plan.assignments == partition_batch(self.EDGES, 3)
        assert plan.waves is None
        assert plan.policy == "fifo"

    def test_every_policy_preserves_the_batch(self):
        for name in POLICIES:
            plan = get_policy(name).plan(self.EDGES, 3)
            assert canon(plan.all_edges()) == canon(self.EDGES), name

    def test_conflict_aware_separates_shared_endpoints(self):
        # Without state, footprints are the endpoints: the three edges at
        # vertex 0 must land in three distinct waves, and a disjoint edge
        # shares wave 0 with one of them.
        plan = ConflictAwarePolicy().plan(self.EDGES, 4)
        wave_of = {}
        for chunk, waves in zip(plan.assignments, plan.waves):
            for e, w in zip(chunk, waves):
                wave_of[tuple(sorted(e))] = w
        star = {wave_of[(0, 1)], wave_of[(0, 2)], wave_of[(0, 3)]}
        assert len(star) == 3
        assert plan.num_waves >= 3
        assert wave_of[(4, 5)] == 0
        assert plan.conflicts > 0

    def test_conflict_aware_empty_batch(self):
        plan = ConflictAwarePolicy().plan([], 4)
        assert plan.assignments == []

    def test_wave_lists_parallel_assignments(self):
        plan = ConflictAwarePolicy().plan(self.EDGES, 2)
        assert len(plan.waves) == len(plan.assignments)
        for chunk, waves in zip(plan.assignments, plan.waves):
            assert len(chunk) == len(waves)
            assert waves == sorted(waves)  # waves execute in index order

    def test_workers_validation(self):
        for name in ("lpt", "conflict-aware"):
            with pytest.raises(ValueError):
                get_policy(name).plan(self.EDGES, 0)


class TestLptAssign:
    def test_assignment_covers_all_tasks(self):
        costs = [5.0, 3.0, 3.0, 2.0, 1.0]
        groups = lpt_assign(costs, 2)
        assert sorted(i for g in groups for i in g) == list(range(5))

    def test_makespan_agrees_with_assignment(self):
        costs = [7.0, 5.0, 4.0, 3.0, 1.0]
        groups = lpt_assign(costs, 3)
        loads = [sum(costs[i] for i in g) for g in groups]
        assert lpt_makespan(costs, 3) == max(loads)

    def test_deterministic(self):
        costs = [1.0] * 6
        assert lpt_assign(costs, 3) == lpt_assign(costs, 3)


# ----------------------------------------------------------------------
# schedule independence: final cores never depend on the policy
# ----------------------------------------------------------------------
def _policy_runs(base, batch, inserting, workers=4):
    for name in POLICIES:
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=workers, policy=name
        )
        if inserting:
            m.insert_edges(batch)
        else:
            m.remove_edges(batch)
        yield name, m


@pytest.mark.parametrize("name,edges", small_graph_families(seed=11))
def test_insert_schedule_independent(name, edges):
    base, tail = split_edges(edges)
    for policy, m in _policy_runs(base, tail, inserting=True):
        assert_cores_match_bz(m)
        m.check()


@pytest.mark.parametrize("name,edges", small_graph_families(seed=23))
def test_remove_schedule_independent(name, edges):
    rng = random.Random(name)
    batch = rng.sample(edges, max(1, len(edges) // 4))
    for policy, m in _policy_runs(edges, batch, inserting=False):
        assert_cores_match_bz(m)
        m.check()


def test_powerlaw_hub_batch_insert_and_remove():
    """The contended regime the scheduler exists for: hub-incident edges."""
    edges = barabasi_albert(80, 4, seed=7)
    base, tail = split_edges(edges, frac=4)
    for policy, m in _policy_runs(base, tail, inserting=True, workers=8):
        assert_cores_match_bz(m)
    rng = random.Random(99)
    batch = rng.sample(edges, len(edges) // 5)
    for policy, m in _policy_runs(edges, batch, inserting=False, workers=8):
        assert_cores_match_bz(m)


def test_random_schedule_stress_conflict_aware():
    """Conflict-aware order under the random (adversarial) machine
    schedule still converges to the ground truth."""
    edges = erdos_renyi(35, 90, seed=5)
    base, tail = split_edges(edges)
    for seed in range(3):
        m = ParallelOrderMaintainer(
            DynamicGraph(base),
            num_workers=4,
            schedule="random",
            seed=seed,
            policy="conflict-aware",
        )
        m.insert_edges(tail)
        assert_cores_match_bz(m)


# ----------------------------------------------------------------------
# wave metrics and accounting
# ----------------------------------------------------------------------
def _hub_batch():
    edges = barabasi_albert(60, 3, seed=13)
    base, tail = split_edges(edges, frac=4)
    return base, tail


class TestWaveMetrics:
    def test_fifo_reports_no_waves(self):
        base, tail = _hub_batch()
        m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=4)
        res = m.insert_edges(tail)
        assert res.report.wave_contention == {}
        assert res.plan.policy == "fifo"

    def test_conflict_aware_reports_waves(self):
        base, tail = _hub_batch()
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=4, policy="conflict-aware"
        )
        res = m.insert_edges(tail)
        wc = res.report.wave_contention
        assert wc, "expected per-wave counters"
        assert set(wc) <= set(range(res.plan.num_waves))
        for stats in wc.values():
            assert set(stats) == {
                "lock_acquires", "lock_failures", "contended_time", "spin_time"
            }
        # wave-attributed lock traffic never exceeds the global counters
        assert sum(s["lock_acquires"] for s in wc.values()) <= res.report.lock_acquires
        assert sum(s["lock_failures"] for s in wc.values()) <= res.report.lock_failures

    def test_accounting_invariant_with_waves(self):
        base, tail = _hub_batch()
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=4, policy="conflict-aware"
        )
        rep = m.insert_edges(tail).report
        assert rep.total_work + rep.spin_time + rep.contended_time == pytest.approx(
            sum(rep.worker_clocks)
        )

    def test_batch_result_exposes_plan(self):
        base, tail = _hub_batch()
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=4, policy="lpt"
        )
        res = m.insert_edges(tail)
        assert res.plan.policy == "lpt"
        assert res.plan.est_costs


# ----------------------------------------------------------------------
# plumbing: engine/stream/threads accept the policy
# ----------------------------------------------------------------------
def test_stream_processor_policy_passthrough():
    edges = erdos_renyi(30, 70, seed=2)
    base, tail = split_edges(edges)
    sp = StreamProcessor(DynamicGraph(base), num_workers=4, policy="conflict-aware")
    for u, v in tail:
        sp.insert(u, v)
    sp.flush()
    assert_cores_match_bz(sp.maintainer)


def test_threaded_maintainer_policy():
    edges = erdos_renyi(30, 70, seed=8)
    base, tail = split_edges(edges)
    tm = ThreadedOrderMaintainer(
        DynamicGraph(base), num_workers=4, policy="conflict-aware"
    )
    tm.insert_edges(tail)
    assert_cores_match_bz(tm)


# ----------------------------------------------------------------------
# race detector over the scheduled paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("inserting", [True, False])
def test_race_detector_clean_under_conflict_aware(inserting):
    edges = barabasi_albert(50, 3, seed=21)
    base, tail = split_edges(edges, frac=4)
    det = RaceDetector()
    if inserting:
        graph, batch = DynamicGraph(base), tail
    else:
        graph = DynamicGraph(edges)
        batch = random.Random(4).sample(edges, len(edges) // 5)
    m = ParallelOrderMaintainer(
        graph,
        num_workers=4,
        schedule="random",
        seed=3,
        policy="conflict-aware",
        detector=det,
    )
    if inserting:
        m.insert_edges(batch)
    else:
        m.remove_edges(batch)
    rep = det.report()
    assert rep.ok, rep.format()
    assert_cores_match_bz(m)
