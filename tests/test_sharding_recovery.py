"""Cross-shard crash recovery: every 2PC crash window must resolve a
dangling prepare identically on both owner shards, and the recovered
stitch must be bit-identical to a single engine over the recovered edge
set.  Also pins the shutdown ordering (quiesce workers before the final
checkpoint) via journal record order."""

import os
import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.service.engine import Engine, EngineConfig
from repro.service.journal import (
    REC_CHECKPOINT,
    REC_PREPARE,
    EdgeJournal,
)
from repro.service.sharding import (
    CRASH_POINTS,
    RouterCrashed,
    ShardedEngine,
    shard_paths,
)

from tests.test_sharding import mono_cores, update_stream


def drive(eng, ops):
    for op, u, v in ops:
        getattr(eng, op)(u, v)


def recovered_matches_fresh_decomposition(base, shards, backend="sim"):
    """Recover, then check the stitch against a from-scratch single
    engine on the recovered union edge set.  Returns the recovered
    router (caller closes)."""
    rec = ShardedEngine.from_journals(
        base, EngineConfig(backend=backend, shards=shards))
    got = rec.cores()
    union = set()
    for sh in rec.shards:
        for u, v in sh.edges():
            union.add(canonical_edge(u, v))
    oracle = Engine(DynamicGraph(sorted(union, key=repr)),
                    EngineConfig(backend="sim"))
    fresh = dict(oracle.maintainer.cores())
    oracle.close()
    assert got == fresh
    return rec


class TestCleanRestart:
    @pytest.mark.parametrize("backend", ["sim", "process"])
    def test_close_then_from_journals_is_bit_identical(self, backend,
                                                       tmp_path):
        base = str(tmp_path / "j")
        init = [(i, i + 1) for i in range(0, 20, 2)]
        ops = update_stream(3, 40, 150)
        oracle = mono_cores(ops, init)
        eng = ShardedEngine(
            DynamicGraph(list(init)),
            EngineConfig(backend=backend, shards=3, journal_path=base))
        drive(eng, ops)
        eng.flush()
        assert eng.cores() == oracle
        eng.close()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend=backend, shards=3))
        assert rec.cores() == oracle
        rec.close()

    def test_foreign_set_survives_restart(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1)
        eng.flush()
        coord = eng.interner.shard_of(canonical_edge(0, 1)[0])
        peer = 1 - coord
        foreign_live = set(eng.shards[peer].engine._foreign)
        assert foreign_live
        eng.close()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        assert set(rec.shards[peer].engine._foreign) == foreign_live
        assert rec.shards[coord].engine.graph.has_edge(0, 1)
        rec.close()

    def test_checkpoint_fast_path_restores_foreign(self, tmp_path):
        """A checkpointed peer restores its foreign set from the
        checkpoint record, not by replaying commit2s before it."""
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base,
                               checkpoint_every=1))
        eng.insert(0, 1)
        eng.insert(2, 3)
        eng.flush()
        eng.close()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        assert rec.cores() == mono_cores(
            [("insert", 0, 1), ("insert", 2, 3)])
        rec.close()

    def test_duplicate_ids_remembered_across_restart(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1, id="once")
        eng.flush()
        eng.close()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        r = rec.insert(4, 5, id="once")
        assert r.error is not None
        rec.close()


class TestCrashWindows:
    """Router death at each 2PC step; shard journals survive."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    @pytest.mark.parametrize("txseq", [0, 4])
    def test_crash_window_recovers_consistently(self, point, txseq,
                                                tmp_path):
        base = str(tmp_path / "j")
        ops = update_stream(9, 32, 160)
        eng = ShardedEngine(
            None,
            EngineConfig(backend="sim", shards=3, journal_path=base,
                         cross_group=4),
            crash_2pc={point: txseq},
        )
        with pytest.raises(RouterCrashed):
            drive(eng, ops)
            eng.flush()
        eng.abandon()
        rec = recovered_matches_fresh_decomposition(base, 3)
        rec.check()
        rec.close()

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_resolution_is_identical_on_both_shards(self, point, tmp_path):
        """After recovery, every transaction that appears in any shard's
        journal is either committed everywhere it prepared or aborted
        everywhere it prepared — never split."""
        base = str(tmp_path / "j")
        ops = update_stream(17, 32, 160)
        eng = ShardedEngine(
            None,
            EngineConfig(backend="sim", shards=3, journal_path=base,
                         cross_group=4),
            crash_2pc={point: 2},
        )
        with pytest.raises(RouterCrashed):
            drive(eng, ops)
            eng.flush()
        eng.abandon()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=3))
        rec.close()
        replays = [EdgeJournal.load(p).replay()
                   for p in shard_paths(base, 3)]
        outcomes = {}
        for rp in replays:
            assert not rp.prepared, "dangling prepare survived recovery"
            for tx in rp.commit2:
                outcomes.setdefault(tx, set()).add("commit")
            for tx in rp.abort2:
                outcomes.setdefault(tx, set()).add("abort")
        for tx, o in outcomes.items():
            assert len(o) == 1, f"{tx} split-brain: {o}"

    def test_prepare_peer_crash_aborts_the_group(self, tmp_path):
        """Crash after the first prepare frame: no commit2 exists
        anywhere, so recovery presumes abort and the edge vanishes."""
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None,
            EngineConfig(backend="sim", shards=2, journal_path=base,
                         cross_group=1),
            crash_2pc={"prepare-peer": 0},
        )
        with pytest.raises(RouterCrashed):
            eng.insert(0, 1)
            eng.flush()
        eng.abandon()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        assert all(not sh.engine.graph.has_edge(0, 1)
                   for sh in rec.shards)
        assert all(canonical_edge(0, 1) not in sh.engine._foreign
                   for sh in rec.shards)
        assert any(r.committed is False for r in rec.resolutions)
        rec.close()

    def test_commit_peer_crash_redoes_the_track_side(self, tmp_path):
        """Crash between the two commit2 scatters: the shard that got
        its commit2 proves the decision; the other side must redo —
        including a track-role side that only updates its foreign
        set."""
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None,
            EngineConfig(backend="sim", shards=2, journal_path=base,
                         cross_group=1),
            crash_2pc={"commit-peer": 0},
        )
        with pytest.raises(RouterCrashed):
            eng.insert(0, 1)
            eng.flush()
        eng.abandon()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        e = canonical_edge(0, 1)
        coord = rec.interner.shard_of(e[0])
        peer = [s for s in range(2) if s != coord][0]
        assert rec.shards[coord].engine.graph.has_edge(0, 1)
        assert e in rec.shards[peer].engine._foreign
        assert any(r.committed for r in rec.resolutions)
        rec.close()

    def test_process_backend_recovers_crash_window(self, tmp_path):
        """The torn journals a crashed sim router leaves behind restart
        under process-backend workers too."""
        base = str(tmp_path / "j")
        ops = update_stream(21, 32, 120)
        eng = ShardedEngine(
            None,
            EngineConfig(backend="sim", shards=2, journal_path=base,
                         cross_group=4),
            crash_2pc={"commit-peer": 1},
        )
        with pytest.raises(RouterCrashed):
            drive(eng, ops)
            eng.flush()
        eng.abandon()
        rec = recovered_matches_fresh_decomposition(
            base, 2, backend="process")
        rec.close()


class TestShutdownOrdering:
    def test_final_checkpoint_is_the_last_record(self, tmp_path):
        """close() quiesces (joins workers) before checkpointing: the
        checkpoint must be the final record of every shard journal, with
        nothing interleaved after it."""
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None,
            EngineConfig(backend="process", shards=2, journal_path=base))
        drive(eng, update_stream(2, 24, 60))
        eng.flush()
        eng.close()
        for p in shard_paths(base, 2):
            j = EdgeJournal.load(p)
            assert j.records[-1]["t"] == REC_CHECKPOINT
            assert sum(1 for r in j.records
                       if r["t"] == REC_CHECKPOINT) >= 1

    def test_close_is_idempotent(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1)
        eng.flush()
        eng.close()
        eng.close()
        for p in shard_paths(base, 2):
            j = EdgeJournal.load(p)
            assert sum(1 for r in j.records
                       if r["t"] == REC_CHECKPOINT) == 1

    def test_abandon_leaves_no_checkpoint(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1)
        eng.flush()
        eng.abandon()
        for p in shard_paths(base, 2):
            j = EdgeJournal.load(p)
            assert all(r["t"] != REC_CHECKPOINT for r in j.records)

    def test_pending_ops_lost_at_crash_is_the_wal_contract(self, tmp_path):
        """An op still in the router's cross buffer at crash time was
        never journaled anywhere — recovery must not invent it."""
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 2)       # intra, flushed below
        eng.flush()
        eng.insert(0, 1)       # cross, still buffered
        eng.abandon()
        rec = ShardedEngine.from_journals(
            base, EngineConfig(backend="sim", shards=2))
        assert not any(sh.engine.graph.has_edge(0, 1)
                       for sh in rec.shards)
        rec.close()

    def test_prepare_records_carry_roles(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1)
        eng.flush()
        eng.close()
        roles = []
        for p in shard_paths(base, 2):
            j = EdgeJournal.load(p)
            roles.extend(r["role"] for r in j.records
                         if r["t"] == REC_PREPARE)
        assert sorted(roles) == ["apply", "track"]

    def test_missing_shard_journal_fails_loudly(self, tmp_path):
        base = str(tmp_path / "j")
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, journal_path=base))
        eng.insert(0, 1)
        eng.flush()
        eng.close()
        os.unlink(shard_paths(base, 2)[1])
        with pytest.raises(FileNotFoundError):
            ShardedEngine.from_journals(
                base, EngineConfig(backend="sim", shards=2))


class TestSeededRouterFaults:
    def test_seeded_crash_plane_is_deterministic(self, tmp_path):
        """With a fault spec, the router draws 2PC crash decisions from
        its own derived plane: same seed, same crash point."""
        from repro.faults.plane import FaultSpec

        def run(tag):
            base = str(tmp_path / f"j-{tag}")
            eng = ShardedEngine(
                None,
                EngineConfig(backend="sim", shards=2, journal_path=base,
                             seed=13, cross_group=2,
                             faults=FaultSpec(crash_rate=0.05,
                                              max_crashes=1)),
            )
            ops = update_stream(4, 24, 120)
            try:
                drive(eng, ops)
                eng.flush()
                eng.close()
                return None
            except RouterCrashed as exc:
                eng.abandon()
                return (exc.point, exc.tx)

        first, second = run("a"), run("b")
        assert first == second
        if first is not None:
            rec = recovered_matches_fresh_decomposition(
                str(tmp_path / "j-a"), 2)
            rec.close()
