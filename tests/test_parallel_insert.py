"""Tests for OurI — parallel Order insertion (Algorithm 5)."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.parallel.batch import ParallelOrderMaintainer, partition_batch
from tests.conftest import assert_cores_match_bz


class TestPartition:
    def test_near_equal_chunks(self):
        chunks = partition_batch(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_fewer_edges_than_workers(self):
        chunks = partition_batch([1, 2], 8)
        assert [len(c) for c in chunks] == [1, 1]

    def test_single_worker(self):
        assert partition_batch([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_batch([1], 0)


class TestBatchValidation:
    def _m(self, P=2):
        return ParallelOrderMaintainer(
            DynamicGraph([(0, 1), (1, 2), (0, 2)]), num_workers=P
        )

    def test_duplicate_in_batch_rejected(self):
        with pytest.raises(ValueError):
            self._m().insert_edges([(3, 4), (4, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            self._m().insert_edges([(3, 3)])

    def test_existing_edge_rejected(self):
        with pytest.raises(ValueError):
            self._m().insert_edges([(0, 1)])

    def test_missing_edge_rejected_on_remove(self):
        with pytest.raises(KeyError):
            self._m().remove_edges([(0, 9)])


class TestSmallBatches:
    def test_triangle_completion_parallel(self):
        m = ParallelOrderMaintainer(DynamicGraph([(0, 1), (1, 2)]), num_workers=2)
        res = m.insert_edges([(0, 2)])
        assert sorted(res.stats[0].v_star) == [0, 1, 2]
        m.check()

    def test_two_independent_triangles(self):
        g = DynamicGraph([(0, 1), (1, 2), (10, 11), (11, 12)])
        m = ParallelOrderMaintainer(g, num_workers=2)
        res = m.insert_edges([(0, 2), (10, 12)])
        assert all(m.core(u) == 2 for u in (0, 1, 2, 10, 11, 12))
        assert len(res.stats) == 2
        m.check()

    def test_new_vertices_in_batch(self):
        m = ParallelOrderMaintainer(DynamicGraph([(0, 1)]), num_workers=2)
        m.insert_edges([(5, 6), (6, 7), (5, 7)])
        assert m.core(5) == m.core(6) == m.core(7) == 2
        m.check()

    def test_interacting_edges_same_subcore(self):
        """Edges whose candidate sets overlap — the contended case."""
        g = DynamicGraph([(i, i + 1) for i in range(6)])  # path: all core 1
        m = ParallelOrderMaintainer(g, num_workers=3)
        m.insert_edges([(0, 2), (2, 4), (1, 3)])
        m.check()
        assert_cores_match_bz(m)

    def test_empty_batch(self):
        m = ParallelOrderMaintainer(DynamicGraph([(0, 1)]), num_workers=2)
        res = m.insert_edges([])
        assert res.makespan == 0.0
        assert res.stats == []


class TestReports:
    def test_one_worker_equals_sequential_work(self):
        """Paper: OurI with 1 worker == OI — makespan equals total work."""
        edges = erdos_renyi(50, 150, seed=1)
        base, dyn = edges[:-30], edges[-30:]
        m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=1)
        res = m.insert_edges(dyn)
        assert res.makespan == pytest.approx(res.report.total_work)

    def test_stats_per_edge(self):
        edges = erdos_renyi(50, 150, seed=2)
        base, dyn = edges[:-25], edges[-25:]
        m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=4)
        res = m.insert_edges(dyn)
        assert len(res.stats) == 25
        assert len(res.v_plus_sizes()) == 25

    def test_multiworker_makespan_not_worse_than_serial(self):
        edges = barabasi_albert(150, 4, seed=3)
        base, dyn = edges[:-80], edges[-80:]
        m1 = ParallelOrderMaintainer(DynamicGraph(base), num_workers=1)
        t1 = m1.insert_edges(dyn).makespan
        m8 = ParallelOrderMaintainer(DynamicGraph(base), num_workers=8)
        t8 = m8.insert_edges(dyn).makespan
        assert t8 < t1
        m1.check()
        m8.check()

    def test_min_clock_run_is_deterministic(self):
        edges = erdos_renyi(40, 120, seed=4)
        base, dyn = edges[:-30], edges[-30:]

        def go():
            m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=4)
            r = m.insert_edges(dyn)
            return r.makespan, r.report.events, m.cores()

        assert go() == go()


class TestCorrectnessAcrossSchedules:
    @pytest.mark.parametrize("workers", [2, 3, 5, 8])
    def test_min_clock(self, workers):
        edges = erdos_renyi(60, 200, seed=5)
        base, dyn = edges[:-60], edges[-60:]
        m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=workers)
        m.insert_edges(dyn)
        m.check()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules(self, seed):
        edges = erdos_renyi(60, 200, seed=6)
        base, dyn = edges[:-60], edges[-60:]
        m = ParallelOrderMaintainer(
            DynamicGraph(base), num_workers=4, schedule="random", seed=seed
        )
        m.insert_edges(dyn)
        m.check()

    def test_uniform_core_graph(self):
        """BA: every vertex shares one core value — the case where prior
        work loses all parallelism but OurI must stay correct and fast."""
        edges = barabasi_albert(200, 3, seed=7)
        base, dyn = edges[:-80], edges[-80:]
        m = ParallelOrderMaintainer(DynamicGraph(base), num_workers=8)
        m.insert_edges(dyn)
        m.check()
