"""Tests for the multi-pass framework plumbing: project loader, pragma
parsing (whitespace tolerance + typo warnings), baseline workflow, the
output renderers and the unified CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import Finding, check_source
from repro.analysis.pragmas import collect_pragmas, parse_line_pragma
from repro.analysis.static import Project, all_rules, run_analysis
from repro.analysis.static.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.static.cli import main
from repro.analysis.static.output import render_sarif

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

LEAKY = (
    "def worker(a, b):\n"
    "    yield from lock_pair(a, b)\n"
    "    yield ('tick', 1.0)\n"
)


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# project loader / symbol table
# ----------------------------------------------------------------------
class TestProject:
    def test_from_sources_derives_modnames(self):
        p = Project.from_sources({
            "src/repro/core/thing.py": "def f():\n    return 1\n",
        })
        mod = p.modules["src/repro/core/thing.py"]
        assert mod.modname == "repro.core.thing"
        assert "repro.core.thing.f" in p.functions

    def test_methods_get_class_qualnames(self):
        p = Project.from_sources({
            "m.py": "class C:\n    def meth(self):\n        pass\n",
        })
        fi = p.functions["m.C.meth"]
        assert fi.cls == "C" and fi.name == "meth"

    def test_resolve_function_through_import_alias(self):
        p = Project.from_sources({
            "src/repro/a.py": "def helper(x):\n    return x\n",
            "src/repro/b.py": (
                "from repro.a import helper as h\n"
                "def caller():\n    return h(1)\n"
            ),
        })
        fi = p.resolve_function(p.modules["src/repro/b.py"], "h")
        assert fi is not None and fi.key == "repro.a.helper"

    def test_syntax_error_becomes_rl000(self):
        p = Project.from_sources({"bad.py": "def broken(:\n"})
        result = run_analysis(p)
        assert rules_of(result.findings) == ["RL000"]

    def test_load_dedupes_file_given_twice(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("x = 1\n", encoding="utf-8")
        p = Project.load([str(f), str(f), str(tmp_path)])
        assert len(list(p.iter_modules())) == 1


# ----------------------------------------------------------------------
# pragmas: whitespace tolerance and typo warnings (the RL006 regression)
# ----------------------------------------------------------------------
class TestPragmas:
    def test_whitespace_after_commas_tolerated(self):
        """`# lint: ok[RL002, RL003]` — the space after the comma must
        not break the suppression (regression: the old parser required
        exact `RL002,RL003`)."""
        src = (
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)  # lint: ok[RL002, RL003]\n"
            "    yield ('tick', 1.0)\n"
        )
        assert check_source(src) == []

    def test_generous_whitespace_everywhere(self):
        p = parse_line_pragma(
            "x = 1  #  lint:  ok[ RL002 , RL003 ]", 1,
            known={"RL002", "RL003"})
        assert p is not None and p.rules == {"RL002", "RL003"}
        assert p.unknown == []

    def test_unknown_rule_warns_instead_of_silently_ignoring(self):
        """A typo'd rule id must produce RL006, and the finding the
        author meant to suppress must survive."""
        src = (
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)  # lint: ok[RL02, RL003]\n"
            "    yield ('tick', 1.0)\n"
        )
        findings = check_source(src)
        assert "RL006" in rules_of(findings)
        assert "RL002" in rules_of(findings)  # not suppressed by the typo
        rl6 = next(f for f in findings if f.rule == "RL006")
        assert "RL02" in rl6.message

    def test_file_scope_pragma_suppresses_whole_file(self):
        src = (
            "# lint: file-ok[RL002]\n"
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    yield ('tick', 1.0)\n"
        )
        assert check_source(src) == []

    def test_file_scope_pragma_only_named_rules(self):
        src = (
            "# lint: file-ok[RL003]\n"
            "def worker(a, b):\n"
            "    yield from lock_pair(a, b)\n"
            "    yield ('tick', 1.0)\n"
        )
        assert set(rules_of(check_source(src))) == {"RL002"}

    def test_pragma_text_inside_docstring_is_not_a_pragma(self):
        """Documentation *about* pragmas (like this repo's own lint
        docstrings) must neither suppress nor warn."""
        src = (
            '"""Write `# lint: ok[RLxxx]` to suppress a finding."""\n'
            "x = 1\n"
        )
        assert check_source(src) == []

    def test_collect_pragmas_reports_unknown_names(self):
        fp = collect_pragmas(
            ["x = 1  # lint: ok[RL999]"], known={"RL001"})
        assert fp.pragmas[0].unknown == ["RL999"]
        assert not fp.suppresses("RL001", 1)


# ----------------------------------------------------------------------
# rule selection and baseline
# ----------------------------------------------------------------------
class TestSelectionAndBaseline:
    def _project(self):
        return Project.from_sources({"leaky.py": LEAKY})

    def test_select_by_rule_id(self):
        result = run_analysis(self._project(), select="RL003")
        assert rules_of(result.findings) == []
        result = run_analysis(self._project(), select="RL002")
        assert set(rules_of(result.findings)) == {"RL002"}

    def test_select_by_pass_name(self):
        result = run_analysis(self._project(), select="lockrules")
        assert set(rules_of(result.findings)) == {"RL002"}

    def test_select_unknown_token_raises(self):
        with pytest.raises(ValueError):
            run_analysis(self._project(), select="RLxx")

    def test_baseline_roundtrip_filters_findings(self, tmp_path):
        result = run_analysis(self._project())
        assert len(result.findings) == 2
        bpath = tmp_path / "baseline.json"
        save_baseline(str(bpath), result.findings)
        baseline = load_baseline(str(bpath))
        rebased = run_analysis(self._project(), baseline=baseline)
        assert rebased.findings == [] and rebased.baselined == 2

    def test_baseline_matches_on_message_not_line(self, tmp_path):
        result = run_analysis(self._project())
        bpath = tmp_path / "baseline.json"
        save_baseline(str(bpath), result.findings)
        shifted = Project.from_sources({"leaky.py": "\n\n" + LEAKY})
        rebased = run_analysis(shifted, baseline=load_baseline(str(bpath)))
        assert rebased.findings == []

    def test_malformed_baseline_raises(self, tmp_path):
        bpath = tmp_path / "bad.json"
        bpath.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(bpath))


# ----------------------------------------------------------------------
# output renderers
# ----------------------------------------------------------------------
class TestSarif:
    def test_sarif_shape(self):
        findings = [Finding("src/x.py", 3, 4, "RL002", "leaked lock")]
        doc = json.loads(render_sarif(findings, all_rules()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RL002", "RL015", "RL020"} <= rule_ids
        res = run["results"][0]
        assert res["ruleId"] == "RL002"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/x.py"
        assert loc["region"]["startLine"] == 3
        assert loc["region"]["startColumn"] == 5  # 1-based


# ----------------------------------------------------------------------
# the unified CLI
# ----------------------------------------------------------------------
class TestCli:
    def _leaky_file(self, tmp_path):
        p = tmp_path / "leaky.py"
        p.write_text(LEAKY, encoding="utf-8")
        return p

    def test_nonexistent_path_exits_2_with_message(self, tmp_path, capsys):
        missing = tmp_path / "no" / "such" / "dir"
        assert main([str(missing)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and str(missing) in err

    def test_no_paths_exits_2(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_select_filters_cli(self, tmp_path, capsys):
        p = self._leaky_file(tmp_path)
        assert main(["--select", "RL003", str(p)]) == 0
        assert main(["--select", "lockrules", str(p)]) == 1

    def test_bad_select_exits_2(self, tmp_path, capsys):
        p = self._leaky_file(tmp_path)
        assert main(["--select", "bogus-pass", str(p)]) == 2
        assert "bogus-pass" in capsys.readouterr().err

    def test_sarif_output_to_file(self, tmp_path):
        p = self._leaky_file(tmp_path)
        out = tmp_path / "lint.sarif"
        assert main(["--format", "sarif", "-o", str(out), str(p)]) == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"]

    def test_write_then_use_baseline(self, tmp_path, capsys):
        p = self._leaky_file(tmp_path)
        bpath = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(bpath), str(p)]) == 0
        assert main(["--baseline", str(bpath), str(p)]) == 0
        capsys.readouterr()

    def test_list_rules_covers_every_pass(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("RL001", "RL006", "RL010", "RL015", "RL020"):
            assert rid in out

    def test_module_alias_entry_point(self, tmp_path):
        """`python -m repro.analysis` must behave like repro-lint."""
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(clean)],
            capture_output=True, text=True,
            cwd=str(ROOT), env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path / "nope")],
            capture_output=True, text=True,
            cwd=str(ROOT), env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 2
        assert "does not exist" in proc.stderr
