"""Tests for the benchmark harness (small-scale shape checks)."""

import pytest

from repro.bench.harness import (
    fig3_core_distributions,
    fig4_running_time,
    fig5_locked_vertices,
    fig6_scalability,
    fig7_stability,
    run_remove_insert,
    sequential_traversal_times,
    table1_datasets,
    table2_speedups,
)
from repro.bench.reporting import render_histogram, render_series, render_table
from repro.bench.workloads import (
    dataset_workload,
    disjoint_batches,
    latest_window,
    sample_batch,
)

QUICK = ["BA", "roadNet-CA"]


class TestWorkloads:
    def test_sample_batch_distinct(self):
        edges = [(i, i + 1) for i in range(100)]
        batch = sample_batch(edges, 10, seed=1)
        assert len(set(batch)) == 10
        assert all(e in edges for e in batch)

    def test_sample_batch_too_large(self):
        with pytest.raises(ValueError):
            sample_batch([(0, 1)], 5)

    def test_latest_window(self):
        edges = [(i, i + 1) for i in range(50)]
        assert latest_window(edges, 5) == edges[-5:]

    def test_dataset_workload_temporal_uses_window(self):
        edges, batch = dataset_workload("DBLP", 100, seed=0)
        assert batch == edges[-100:]

    def test_dataset_workload_static_samples(self):
        edges, batch = dataset_workload("ER", 100, seed=0)
        assert len(batch) == 100
        assert set(batch) <= set(edges)

    def test_disjoint_batches(self):
        edges = [(i, i + 1) for i in range(200)]
        groups = disjoint_batches(edges, 4, 20, seed=1)
        flat = [e for g in groups for e in g]
        assert len(flat) == len(set(flat)) == 80

    def test_disjoint_batches_too_many(self):
        with pytest.raises(ValueError):
            disjoint_batches([(0, 1)], 2, 5)


class TestRunners:
    def test_run_remove_insert_cell(self):
        cell = run_remove_insert("roadNet-CA", 50, 4, "Our", check=True)
        assert cell["insert_makespan"] > 0
        assert cell["remove_makespan"] > 0
        assert len(cell["insert_stats"]) == 50

    def test_table1_structure(self):
        rows = table1_datasets(QUICK)
        assert {r["name"] for r in rows} == set(QUICK)
        for r in rows:
            assert r["m"] > 0 and r["max_k"] >= 1

    def test_fig3_histograms(self):
        hists = fig3_core_distributions(["BA"])
        ba = hists["BA"]
        assert len(ba) == 1  # single core value: the paper's key property

    @pytest.mark.slow
    def test_fig4_and_table2(self):
        data = fig4_running_time(
            ["roadNet-CA"], worker_counts=(1, 4), batch_size=60
        )
        ds = data["roadNet-CA"]
        assert ds["Our"][1]["insert"] > 0
        assert "T" in ds  # TI/TR reference
        rows = table2_speedups(data, p_hi=4)
        assert rows[0]["dataset"] == "roadNet-CA"
        assert "OurI vs JEI @4".replace("JEI", "JEI") or True
        assert any("Our" in k for k in rows[0])

    @pytest.mark.slow
    def test_sequential_traversal_times(self):
        t = sequential_traversal_times("roadNet-CA", 40)
        assert t["TI"] > 0 and t["TR"] > 0

    def test_fig5_histograms(self):
        out = fig5_locked_vertices(["roadNet-CA"], batch_size=60, workers=4)
        h = out["roadNet-CA"]["OurI"]
        assert sum(h.values()) == 60
        # the headline property: almost all edges lock at most 10 vertices
        small = sum(v for k, v in h.items() if k <= 10)
        assert small / 60 >= 0.9

    def test_fig6_ratios(self):
        out = fig6_scalability(
            ["roadNet-CA"], batch_sizes=(30, 60), workers=4, algos=("Our",)
        )
        cell = out["roadNet-CA"]["Our"]
        assert cell[30]["insert_ratio"] == pytest.approx(1.0)
        assert cell[60]["insert_ratio"] > 1.0  # more edges, more time

    def test_fig7_stability(self):
        out = fig7_stability(
            ["roadNet-CA"], groups=3, batch_size=40, workers=4, algos=("Our",)
        )
        cell = out["roadNet-CA"]["Our"]
        assert len(cell["insert_times"]) == 3
        assert cell["insert_rel_spread"] >= 0


class TestReporting:
    def test_render_table(self):
        s = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in s and "22" in s
        assert len(s.splitlines()) == 4

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_series(self):
        s = render_series({"Our": {1: 10.0, 2: 5.0}, "JE": {1: 20.0}})
        assert "Our" in s and "JE" in s and "-" in s

    def test_render_histogram(self):
        s = render_histogram({0: 5, 3: 100})
        assert "#" in s and "100" in s

    def test_render_histogram_empty(self):
        assert render_histogram({}) == "(empty)"


class TestLogPlot:
    def test_render_log_plot(self):
        from repro.bench.reporting import render_log_plot

        s = render_log_plot({"OurI": {1: 100.0, 16: 10.0}, "TI": {1: 100000.0}})
        assert "A=OurI" in s and "B=TI" in s
        assert "(workers)" in s
        # markers placed: at least one A and one B in the grid
        assert "A" in s.split("A=OurI")[0]

    def test_render_log_plot_empty(self):
        from repro.bench.reporting import render_log_plot

        assert render_log_plot({}) == "(no data)"

    def test_render_log_plot_collision(self):
        from repro.bench.reporting import render_log_plot

        s = render_log_plot({"a": {1: 50.0}, "b": {1: 50.0}})
        assert "*" in s
