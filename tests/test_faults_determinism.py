"""Determinism regression tests (fault-plane ISSUE satellite): the same
seed must reproduce the same fault schedule byte-for-byte, the same
engine counters, and the same journal bytes — and the schedule must not
depend on the interleaving the workers happened to run in."""

from repro.faults.plane import CRASH, FaultPlane, FaultSpec, as_plane
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert
from repro.parallel.batch import ParallelOrderMaintainer
from repro.service import Engine, EngineConfig

SPEC = FaultSpec(crash_rate=0.02, stall_rate=0.03, timeout_rate=0.03,
                 max_crashes=5)


def _chaos_run(seed):
    """One full engine run under SPEC; returns every comparable artifact."""
    edges = barabasi_albert(40, 3, seed=1)
    eng = Engine(DynamicGraph(edges[:60]),
                 EngineConfig(max_batch=4, faults=SPEC, seed=seed,
                              max_retries=10, checkpoint_every=3))
    for i, (u, v) in enumerate(edges[60:]):
        eng.insert(u, v)
        if i % 4 == 3:
            eng.query("degeneracy")
    for u, v in edges[:8]:
        eng.remove(u, v)
    eng.flush()
    m = eng.metrics()
    return {
        "schedule": eng.faults.schedule(),
        "schedule_bytes": eng.faults.schedule_bytes(),
        "schedule_digest": eng.faults.digest(),
        "journal_bytes": eng.journal.to_bytes(),
        "journal_digest": eng.journal.digest(),
        "counters": m["counters"],
        "faults": m["faults"],
        "sim": m["sim"],
        "now": m["now"],
        "epoch": m["epoch"],
        "cores": eng.cores(),
    }


def test_same_seed_reproduces_everything_byte_for_byte():
    a, b = _chaos_run(seed=7), _chaos_run(seed=7)
    assert a["schedule"], "no faults injected; spec/seed need retuning"
    assert a["schedule_bytes"] == b["schedule_bytes"]
    assert a["schedule_digest"] == b["schedule_digest"]
    assert a["journal_bytes"] == b["journal_bytes"]
    assert a["journal_digest"] == b["journal_digest"]
    assert a["counters"] == b["counters"]
    assert a["faults"] == b["faults"]
    assert a["sim"] == b["sim"]
    assert a["now"] == b["now"]
    assert a["epoch"] == b["epoch"]
    assert a["cores"] == b["cores"]


def test_different_seed_changes_the_schedule():
    a, b = _chaos_run(seed=7), _chaos_run(seed=8)
    assert a["schedule_bytes"] != b["schedule_bytes"]
    # ...but faults are invisible in the result: both runs converge to
    # the same committed cores (retries > crash budget, so no abandons)
    assert a["cores"] == b["cores"]


def test_decisions_are_interleaving_independent():
    """A decision depends only on (seed, run, wid, per-worker index,
    kind) — the order different workers reach the plane must not
    matter.  Crash budget is disabled so no global state intervenes."""
    spec = FaultSpec(crash_rate=0.05, stall_rate=0.05, timeout_rate=0.05)
    kinds = ["tick", "try", "spin", "release"]

    def decide_all(order):
        plane = FaultPlane(spec, seed=42)
        plane.begin_run()
        got = {}
        for wid, step in order:
            got[(wid, step)] = plane.decide(wid, kinds[step % len(kinds)])
        return got

    seq = [(w, s) for w in range(4) for s in range(50)]       # worker-major
    interleaved = [(w, s) for s in range(50) for w in range(4)]  # step-major
    assert decide_all(seq) == decide_all(interleaved)


def test_retry_sees_a_fresh_schedule_not_a_replay():
    """begin_run() advances the hash stream: a batch that crashed does
    not deterministically crash again on retry (otherwise max_retries
    would be useless)."""
    spec = FaultSpec(crash_rate=0.05)
    plane = FaultPlane(spec, seed=3)
    runs = []
    for _ in range(4):
        plane.begin_run()
        runs.append(tuple(plane.decide(0, "tick") for _ in range(100)))
    assert len(set(runs)) > 1


def test_sim_reports_identical_under_benign_faults():
    """Stall/timeout-only schedules are deterministic down to the
    SimReport: two maintainers with the same seed produce identical
    timing and counter surfaces."""
    edges = barabasi_albert(30, 3, seed=2)
    spec = FaultSpec(stall_rate=0.1, timeout_rate=0.1)
    reports = []
    for _ in range(2):
        m = ParallelOrderMaintainer(DynamicGraph(edges[:50]), faults=spec, seed=5)
        r = m.insert_edges(edges[50:]).report
        reports.append((r.makespan, r.total_work, r.spin_time,
                        r.lock_acquires, r.lock_failures,
                        r.stalls_injected, r.timeouts_injected))
    assert reports[0] == reports[1]
    assert reports[0][5] > 0 or reports[0][6] > 0


def test_as_plane_coercion():
    assert as_plane(None) is None
    assert as_plane(FaultSpec()) is None          # inactive spec: no plane
    plane = as_plane(SPEC, seed=9)
    assert isinstance(plane, FaultPlane) and plane.seed == 9
    assert as_plane(plane) is plane               # planes pass through


def test_schedule_rows_carry_full_attribution():
    spec = FaultSpec(crash_rate=1.0, max_crashes=1)
    plane = FaultPlane(spec, seed=0)
    plane.begin_run()
    assert plane.decide(2, "tick") == (CRASH, 0)
    assert plane.decide(3, "tick") is None        # budget spent
    (row,) = plane.schedule()
    assert row == {"run": 1, "worker": 2, "index": 0, "event": "tick",
                   "action": CRASH}
    assert plane.counters()["crashes"] == 1
