"""Unit + property tests for the two-level Order-Maintenance list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.om.list_labels import OMItem, OMList


def build(payloads, capacity=8):
    lst = OMList(capacity=capacity)
    items = []
    for p in payloads:
        it = OMItem(p)
        lst.insert_tail(it)
        items.append(it)
    return lst, items


class TestBasicOps:
    def test_empty_list(self):
        lst = OMList()
        assert len(lst) == 0
        assert lst.first() is None
        assert lst.last() is None
        assert lst.to_list() == []

    def test_insert_tail_order(self):
        lst, items = build("abc")
        assert lst.to_list() == ["a", "b", "c"]
        assert lst.first() is items[0]
        assert lst.last() is items[2]

    def test_insert_head(self):
        lst, _ = build("bc")
        x = OMItem("a")
        lst.insert_head(x)
        assert lst.to_list() == ["a", "b", "c"]

    def test_insert_after_middle(self):
        lst, items = build("ac")
        mid = OMItem("b")
        lst.insert_after(items[0], mid)
        assert lst.to_list() == ["a", "b", "c"]

    def test_order_semantics(self):
        lst, items = build("abcd")
        assert lst.order(items[0], items[3])
        assert not lst.order(items[3], items[0])
        assert not lst.order(items[1], items[1])

    def test_order_raises_for_foreign_item(self):
        lst, items = build("ab")
        with pytest.raises(ValueError):
            lst.order(items[0], OMItem("zzz"))

    def test_delete_middle(self):
        lst, items = build("abc")
        lst.delete(items[1])
        assert lst.to_list() == ["a", "c"]
        assert not items[1].in_list

    def test_delete_last_updates_tail(self):
        lst, items = build("abc")
        lst.delete(items[2])
        assert lst.last() is items[1]
        y = OMItem("d")
        lst.insert_tail(y)
        assert lst.to_list() == ["a", "b", "d"]

    def test_delete_all_then_reuse(self):
        lst, items = build("abc")
        for it in items:
            lst.delete(it)
        assert len(lst) == 0
        lst.insert_head(OMItem("x"))
        assert lst.to_list() == ["x"]

    def test_reinsert_deleted_item(self):
        lst, items = build("abc")
        lst.delete(items[0])
        lst.insert_tail(items[0])
        assert lst.to_list() == ["b", "c", "a"]

    def test_double_insert_raises(self):
        lst, items = build("ab")
        with pytest.raises(ValueError):
            lst.insert_tail(items[0])

    def test_delete_foreign_raises(self):
        lst, _ = build("ab")
        with pytest.raises(ValueError):
            lst.delete(OMItem("zzz"))

    def test_insert_after_unlinked_anchor_raises(self):
        lst, items = build("ab")
        lst.delete(items[0])
        with pytest.raises(ValueError):
            lst.insert_after(items[0], OMItem("x"))


class TestNavigation:
    def test_successor_chain(self):
        lst, items = build("abcd")
        chain = []
        x = lst.first()
        while x is not None:
            chain.append(x.payload)
            x = lst.successor(x)
        assert chain == ["a", "b", "c", "d"]

    def test_predecessor_chain(self):
        lst, items = build("abcd")
        chain = []
        x = lst.last()
        while x is not None:
            chain.append(x.payload)
            x = lst.predecessor(x)
        assert chain == ["d", "c", "b", "a"]

    def test_predecessor_of_first_is_none(self):
        lst, items = build("ab")
        assert lst.predecessor(items[0]) is None

    def test_insert_before(self):
        lst, items = build("ac")
        lst.insert_before(items[0], OMItem("z"))
        lst.insert_before(items[1], OMItem("b"))
        assert lst.to_list() == ["z", "a", "b", "c"]


class TestRelabeling:
    def test_splits_triggered_by_head_hammering(self):
        lst = OMList(capacity=4)
        for i in range(200):
            lst.insert_head(OMItem(i))
        assert lst.n_splits > 0
        lst.check_invariants()
        assert lst.to_list() == list(range(199, -1, -1))

    def test_same_spot_insertions_force_rebalance(self):
        lst = OMList(capacity=4)
        anchor = OMItem("anchor")
        lst.insert_tail(anchor)
        for i in range(500):
            lst.insert_after(anchor, OMItem(i))
        lst.check_invariants()
        assert lst.n_splits > 0
        # all inserted after the same anchor -> reversed order
        assert lst.to_list() == ["anchor"] + list(range(499, -1, -1))

    def test_version_bumps_on_relabel(self):
        lst = OMList(capacity=4)
        v0 = lst.version
        for i in range(100):
            lst.insert_head(OMItem(i))
        assert lst.version > v0
        assert lst.version % 2 == 0  # begin/end pairs
        assert lst.relabels_in_progress == 0

    def test_delete_never_relabels(self):
        lst, items = build(range(100), capacity=8)
        splits, rebalances = lst.n_splits, lst.n_rebalances
        v = lst.version
        for it in items[10:60]:
            lst.delete(it)
        assert (lst.n_splits, lst.n_rebalances) == (splits, rebalances)
        assert lst.version == v

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            OMList(capacity=2)

    @pytest.mark.parametrize("capacity", [4, 8, 64])
    def test_random_workout_keeps_invariants(self, capacity):
        rng = random.Random(capacity)
        lst = OMList(capacity=capacity)
        ref = []
        for step in range(1500):
            op = rng.random()
            if not ref or op < 0.35:
                it = OMItem(step)
                if rng.random() < 0.5:
                    lst.insert_head(it)
                    ref.insert(0, it)
                else:
                    lst.insert_tail(it)
                    ref.append(it)
            elif op < 0.7:
                i = rng.randrange(len(ref))
                it = OMItem(step)
                lst.insert_after(ref[i], it)
                ref.insert(i + 1, it)
            else:
                i = rng.randrange(len(ref))
                lst.delete(ref.pop(i))
        lst.check_invariants()
        assert lst.to_list() == [x.payload for x in ref]
        for _ in range(300):
            i, j = rng.randrange(len(ref)), rng.randrange(len(ref))
            assert lst.order(ref[i], ref[j]) == (i < j)


class OMListMachine(RuleBasedStateMachine):
    """Hypothesis state machine: OMList must always agree with a plain
    Python list under arbitrary operation sequences."""

    def __init__(self):
        super().__init__()
        self.lst = OMList(capacity=4)  # tiny capacity → frequent relabels
        self.ref = []
        self.counter = 0

    @rule(at_head=st.booleans())
    def insert_end(self, at_head):
        it = OMItem(self.counter)
        self.counter += 1
        if at_head:
            self.lst.insert_head(it)
            self.ref.insert(0, it)
        else:
            self.lst.insert_tail(it)
            self.ref.append(it)

    @precondition(lambda self: self.ref)
    @rule(data=st.data())
    def insert_after(self, data):
        i = data.draw(st.integers(0, len(self.ref) - 1))
        it = OMItem(self.counter)
        self.counter += 1
        self.lst.insert_after(self.ref[i], it)
        self.ref.insert(i + 1, it)

    @precondition(lambda self: self.ref)
    @rule(data=st.data())
    def delete(self, data):
        i = data.draw(st.integers(0, len(self.ref) - 1))
        self.lst.delete(self.ref.pop(i))

    @invariant()
    def agrees_with_reference(self):
        assert self.lst.to_list() == [x.payload for x in self.ref]

    @invariant()
    def structure_is_sound(self):
        self.lst.check_invariants()

    @precondition(lambda self: len(self.ref) >= 2)
    @invariant()
    def order_agrees(self):
        a, b = 0, len(self.ref) - 1
        assert self.lst.order(self.ref[a], self.ref[b])
        assert not self.lst.order(self.ref[b], self.ref[a])


TestOMListStateMachine = OMListMachine.TestCase
TestOMListStateMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)


@given(st.lists(st.integers(0, 2), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_label_monotonicity_along_list(ops):
    """Walking any constructed list, (group,bottom) label pairs strictly
    increase — the property Order() comparison relies on."""
    lst = OMList(capacity=4)
    anchor = None
    for i, op in enumerate(ops):
        it = OMItem(i)
        if op == 0 or anchor is None:
            lst.insert_head(it)
        elif op == 1:
            lst.insert_tail(it)
        else:
            lst.insert_after(anchor, it)
        anchor = it
    labels = [lst.labels(x) for x in lst]
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)
