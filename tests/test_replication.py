"""Replication subsystem tests: WAL shipping, follower replay, the
staleness contract, and chaos-style failover with the bit-identity
promotion gate (``docs/replication.md``)."""

import json

import pytest

from repro.core.decomposition import core_decomposition
from repro.faults.plane import FaultSpec
from repro.graph.dictgraph import DictGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.replication import (
    FollowerEngine,
    JournalShipper,
    ReplicaSet,
)
from repro.service import Engine, EngineConfig
from repro.service.journal import REC_INTENT, EdgeJournal
from repro.service.requests import (
    E_PRIMARY_DOWN,
    E_REPLICA_UNREADY,
    E_UNKNOWN_VERTEX,
    STATUS_COMMITTED,
    STATUS_QUARANTINED,
    STATUS_REJECTED,
)


def _journaled_engine(edges, n_ops=24, **cfg_kw):
    """A primary with some committed history to ship."""
    cfg = EngineConfig(max_batch=4, **cfg_kw)
    eng = Engine(DynamicGraph(edges), cfg)
    for i in range(n_ops):
        u, v = edges[i % len(edges)]
        if i % 3 == 2:
            eng.remove(u, v)
        else:
            eng.insert(u + 1000, v + 2000 + i)
    eng.flush()
    return eng


# ----------------------------------------------------------------------
# JournalShipper: incremental tailing + cursor persistence
# ----------------------------------------------------------------------
class TestShipper:
    def test_object_mode_tails_incrementally(self):
        eng = _journaled_engine(erdos_renyi(20, 40, seed=1))
        s = JournalShipper(eng.journal, batch_records=5)
        total = len(eng.journal.records)
        assert s.lag() == total
        shipped = []
        while True:
            batch = s.poll()
            if not batch:
                break
            assert len(batch) <= 5
            shipped.extend(batch)
        assert shipped == eng.journal.records
        assert s.lag() == 0
        # the byte offset tracks the canonical serialization exactly
        assert s.offset == len(eng.journal.to_bytes())
        # new records become visible without any reset
        eng.insert(7000, 7001)
        eng.flush()
        assert s.lag() > 0
        s.poll()
        assert s.cursor == len(eng.journal.records)

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            JournalShipper(None)
        with pytest.raises(ValueError, match="exactly one"):
            JournalShipper(EdgeJournal(), _path="x.jsonl")
        with pytest.raises(ValueError, match="batch_records"):
            JournalShipper(EdgeJournal(), batch_records=0)

    def test_file_mode_resume_and_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        eng = _journaled_engine(erdos_renyi(15, 30, seed=2),
                                journal_path=path)
        eng.close()
        s = JournalShipper.from_file(path, batch_records=7)
        got = []
        while True:
            batch = s.poll()
            if not batch:
                break
            got.extend(batch)
        assert got == [json.loads(ln) for ln in
                       open(path, encoding="utf-8").read().splitlines()]
        # a torn trailing write (no newline) is never shipped...
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": "intent", "kind": "+", "edges"')
        assert s.poll() == []
        # ...until the writer finishes the line
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(': [[1, 2]], "ids": ["z"], "attempt": 0}\n')
        (rec,) = s.poll()
        assert rec["t"] == REC_INTENT and rec["ids"] == ["z"]

    def test_cursor_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        eng = _journaled_engine(erdos_renyi(15, 30, seed=3),
                                journal_path=path)
        eng.close()
        s = JournalShipper.from_file(path)
        s.poll(max_records=4)
        side = str(tmp_path / "cursor.jsonl")
        s.save_cursor(side)
        assert JournalShipper.load_cursor(side) == (s.cursor, s.offset)
        # a resumed shipper continues where the dead one stopped: the
        # concatenation of both tails is the whole journal
        resumed = JournalShipper.from_file(
            path, cursor=JournalShipper.load_cursor(side))
        rest = []
        while True:
            batch = resumed.poll()
            if not batch:
                break
            rest.extend(batch)
        assert len(rest) == len(EdgeJournal.load(path)) - 4
        with open(side, "w", encoding="utf-8") as fh:
            fh.write('{"t": "init", "edges": []}\n')
        with pytest.raises(ValueError, match="not a cursor record"):
            JournalShipper.load_cursor(side)


# ----------------------------------------------------------------------
# FollowerEngine: replay + the staleness contract
# ----------------------------------------------------------------------
class TestFollower:
    def test_replay_reproduces_primary_state(self):
        eng = _journaled_engine(erdos_renyi(25, 60, seed=4),
                                checkpoint_every=3)
        f = FollowerEngine(0, eng.config)
        f.receive(eng.journal.records)
        f.replay()
        assert f.epoch == eng.epoch
        assert f.maintainer.cores() == eng.cores()
        # re-anchoring makes the follower bit-identical to a cold
        # restart of the same prefix — the promotion safety property
        f.verify_matches(Engine.from_journal(eng.journal.to_bytes(),
                                             eng.config))

    def test_staleness_fields_reflect_backlog(self):
        eng = _journaled_engine(erdos_renyi(20, 40, seed=5))
        f = FollowerEngine(1, eng.config)
        f.receive(eng.journal.records)
        f.replay()
        at_head = f.query("degeneracy")
        assert at_head.status == STATUS_COMMITTED
        assert at_head.replica_epoch == eng.epoch
        assert at_head.replica_lag_records == 0
        # primary commits more; the follower has not seen it yet
        eng.insert(8000, 8001)
        eng.flush()
        head = len(eng.journal.records)
        stale = f.query("degeneracy", head_records=head)
        assert stale.replica_epoch == f.epoch < eng.epoch
        assert stale.replica_lag_records == head - f.applied > 0
        # partial replay: received-but-unapplied records count too
        f.receive(eng.journal.records[f.applied:])
        assert f.backlog() > 0
        assert f.lag_records() == f.backlog()

    def test_query_plane_error_paths(self):
        empty = FollowerEngine(2)
        r = empty.query("core", 0)
        assert r.status == STATUS_QUARANTINED
        assert r.error["code"] == E_REPLICA_UNREADY
        eng = _journaled_engine(erdos_renyi(10, 20, seed=6), n_ops=6)
        f = FollowerEngine(2, eng.config)
        f.receive(eng.journal.records)
        f.replay()
        assert f.query("bogus").error["code"] == "unknown-query"
        missing = f.query("core", "no-such-vertex")
        assert missing.error["code"] == E_UNKNOWN_VERTEX
        assert missing.replica_epoch == f.epoch

    def test_stream_grammar_violations_fail_loudly(self):
        f = FollowerEngine(0)
        f.receive([{"t": "commit", "epoch": 1}])
        with pytest.raises(ValueError, match="without an intent"):
            f.replay()
        g = FollowerEngine(1)
        g.receive([{"t": "init", "edges": [[0, 1]]},
                   {"t": "init", "edges": [[0, 1]]}])
        with pytest.raises(ValueError, match="second init"):
            g.replay()
        h = FollowerEngine(2)
        h.receive([{"t": "wat"}])  # lint: ok[RL020]
        with pytest.raises(ValueError, match="unknown record kind"):
            h.replay()

    def test_superseded_intents_count_as_aborted(self):
        j = EdgeJournal()
        j.log_init([(0, 1), (1, 2), (0, 2)])
        j.log_intent("+", [(0, 3)], ["a"], attempt=0)   # crashed attempt
        j.log_intent("+", [(0, 3)], ["a"], attempt=1)
        j.log_commit(1)
        f = FollowerEngine(0)
        f.receive(j.records)
        f.replay()
        assert f.aborted_intents == 1
        assert f.epoch == 1
        assert f.maintainer.graph.has_edge(0, 3)


# ----------------------------------------------------------------------
# ReplicaSet: shipping policy, failover, promotion bit-identity
# ----------------------------------------------------------------------
class TestReplicaSet:
    def test_semi_sync_shipping_policy(self):
        edges = erdos_renyi(20, 40, seed=7)
        with ReplicaSet(DynamicGraph(edges), replicas=2, ship_lag=50,
                        max_batch=2) as rs:
            for i in range(12):
                rs.insert(100 + i, 200 + i)
            rs.flush()
            head = len(rs.primary.journal.records)
            # the sync replica (pool head) is always at the journal head
            assert rs.followers[0].applied == head
            # the async replica is allowed to trail within ship_lag
            assert rs.followers[1].applied < head
            assert rs.followers[1].lag_records(head) <= 50 + 4
            rs.sync()
            assert all(f.applied == head for f in rs.followers)
            rs.check()

    def test_queries_round_robin_with_staleness_stamp(self):
        edges = erdos_renyi(20, 40, seed=8)
        with ReplicaSet(DynamicGraph(edges), replicas=3,
                        ship_lag=4, max_batch=2) as rs:
            for i in range(8):
                rs.insert(300 + i, 400 + i)
            responses = [rs.query("degeneracy") for _ in range(6)]
            assert all(r.replica_epoch is not None for r in responses)
            assert all(r.replica_lag_records is not None
                       for r in responses)
            served = [f.queries_served for f in rs.followers]
            assert served == [2, 2, 2]
            # every stale answer is the primary's own answer at that epoch
            rs.flush()
            for r in responses:
                if r.status == STATUS_COMMITTED:
                    want = rs.primary.view(r.replica_epoch).degeneracy()
                    assert r.value == want

    def test_forced_failover_promotes_most_caught_up(self):
        edges = erdos_renyi(25, 60, seed=9)
        with ReplicaSet(DynamicGraph(edges), replicas=3, ship_lag=6,
                        max_batch=3, checkpoint_every=2) as rs:
            for i in range(18):
                rs.insert(500 + i, 600 + i)
            rs.flush()
            old_epoch = rs.epoch
            rs.kill_primary()
            assert rs.generation == 1 and len(rs.promotions) == 1
            promo = rs.promotions[0]
            # the sync replica held the longest committed prefix
            assert promo.replica == 0
            assert rs.primary.epoch == promo.epoch == old_epoch
            assert len(rs.followers) == 2
            # survivors learn the new generation via the promote record
            rs.sync()
            assert all(f.generation == 1 for f in rs.followers)
            assert all(f.promotions_seen == 1 for f in rs.followers)
            rs.check()
            # the new primary keeps committing
            rs.insert(900, 901)
            rs.flush()
            assert rs.primary.graph.has_edge(900, 901)

    def test_promotion_truncates_dangling_intent(self):
        edges = erdos_renyi(15, 30, seed=10)
        with ReplicaSet(DynamicGraph(edges), replicas=1,
                        ship_lag=0, max_batch=2) as rs:
            rs.insert(700, 701)
            rs.insert(701, 702)
            rs.flush()
            # hand-ship a dangling intent the primary never committed
            # (it "died mid-batch"): failover must drop it
            f = rs.followers[0]
            f.receive([{"t": "intent", "kind": "+",
                        "edges": [[777, 778]], "ids": ["doomed"],
                        "attempt": 0}])
            committed = len(f.records) - 1
            rs.kill_primary()
            promo = rs.promotions[0]
            assert promo.truncated_records == 1
            assert promo.prefix_records == committed
            assert not rs.primary.graph.has_edge(777, 778)
            # the promoted journal carries the prefix + promote record
            replay = rs.primary.journal.replay()
            assert replay.generation == 1
            assert replay.promotions == 1

    def test_promoted_state_is_bit_identical_to_cold_restart(self):
        edges = erdos_renyi(25, 60, seed=11)
        with ReplicaSet(DynamicGraph(edges), replicas=2, ship_lag=4,
                        max_batch=3, checkpoint_every=2) as rs:
            for i in range(15):
                rs.insert(800 + i, 850 + i)
            rs.flush()
            rs.kill_primary()
            promo = rs.promotions[0]
            prefix = promo.prefix_records
            j = EdgeJournal()
            j.records = rs.primary.journal.records[:prefix]
            cold = Engine.from_journal(j, rs.config)
            assert rs.primary.epoch == cold.epoch
            assert rs.primary.cores() == cold.cores()
            assert (rs.primary.maintainer.order_sequence()
                    == cold.maintainer.order_sequence())

    def test_seeded_crashes_and_headless_mode(self):
        edges = erdos_renyi(20, 40, seed=12)
        spec = FaultSpec(crash_rate=0.2, max_crashes=1)
        with ReplicaSet(DynamicGraph(edges), replicas=1, max_batch=2,
                        primary_faults=spec, promote_on_crash=False,
                        seed=3) as rs:
            rejected = []
            for i in range(30):
                r = rs.insert(i + 100, i + 200)
                if r.status == STATUS_REJECTED:
                    rejected.append(r)
            assert rs.primary is None and rs.primary_crashes == 1
            assert rejected
            assert all(r.error["code"] == E_PRIMARY_DOWN for r in rejected)
            # reads keep working off the surviving follower
            q = rs.query("degeneracy")
            assert q.status == STATUS_COMMITTED
            m = rs.metrics()
            assert m["primary_alive"] is False and m["promotions"] == 0

    def test_zero_replicas_degenerates_to_plain_primary(self):
        edges = erdos_renyi(10, 20, seed=13)
        with ReplicaSet(DynamicGraph(edges), replicas=0,
                        max_batch=2) as rs:
            rs.insert(50, 51)
            rs.flush()
            assert rs.query("core", 50).status == STATUS_COMMITTED
            rs.check()
            # with no follower to promote, death leaves the set headless
            rs.kill_primary()
            assert rs.primary is None
            dead = rs.insert(60, 61)
            assert dead.status == STATUS_REJECTED
            assert dead.error["code"] == E_PRIMARY_DOWN
            with pytest.raises(ValueError, match="no follower"):
                rs.promote()

    def test_final_edges_survive_double_failover(self):
        edges = erdos_renyi(25, 60, seed=14)
        with ReplicaSet(DynamicGraph(edges), replicas=3, ship_lag=3,
                        max_batch=3, checkpoint_every=3) as rs:
            acked = set()
            for i in range(10):
                rs.insert(i + 100, i + 300, id=f"u{i}")
            for r in rs.flush():
                if r.status == STATUS_COMMITTED:
                    acked.add(r.id)
            rs.kill_primary()
            for i in range(10, 20):
                rs.insert(i + 100, i + 300, id=f"u{i}")
            for r in rs.flush():
                if r.status == STATUS_COMMITTED:
                    acked.add(r.id)
            rs.kill_primary()
            assert rs.generation == 2
            # no committed op lost across two promotions
            journaled = {i for b in rs.primary.journal.replay().committed
                         for i in b.ids}
            assert acked <= journaled
            # and the final state equals a from-scratch decomposition
            oracle = core_decomposition(
                DictGraph(rs.primary.journal.final_edges())).core
            got = rs.primary.cores()
            assert all(got[u] == k for u, k in oracle.items())


# ----------------------------------------------------------------------
# satellite: snapshot-store epoch floors after recovery and promotion
# ----------------------------------------------------------------------
class TestEpochFloors:
    def test_follower_refuses_views_before_its_anchor_checkpoint(self):
        eng = _journaled_engine(erdos_renyi(25, 60, seed=15),
                                checkpoint_every=2)
        ckpt = eng.journal.replay().checkpoint
        assert ckpt is not None and ckpt.epoch >= 2
        # a late-joining replica attaches at the latest checkpoint: its
        # floor is the checkpoint epoch, exactly like Engine.from_journal
        late = FollowerEngine(0, eng.config)
        anchor = next(i for i, r in enumerate(eng.journal.records)
                      if r.get("t") == "checkpoint"
                      and r["epoch"] == ckpt.epoch)
        late.receive(eng.journal.records[anchor:])
        late.replay()
        assert late.epoch == eng.epoch
        assert late.snapshots.min_epoch == ckpt.epoch
        assert late.view(ckpt.epoch).cores() is not None
        with pytest.raises(ValueError):
            late.view(ckpt.epoch - 1)

    def test_full_history_follower_keeps_epoch0_answerable(self):
        eng = _journaled_engine(erdos_renyi(20, 40, seed=16),
                                checkpoint_every=2)
        f = FollowerEngine(0, eng.config)
        f.receive(eng.journal.records)
        f.replay()
        # shipped from birth: re-anchoring rebinds, never truncates, so
        # the whole ledger from epoch 0 stays answerable
        assert f.snapshots.min_epoch == 0
        assert f.view(0).cores() is not None
        with pytest.raises(ValueError):
            f.view(-1)

    def test_promoted_primary_floor_is_its_anchor_checkpoint(self):
        edges = erdos_renyi(25, 60, seed=17)
        with ReplicaSet(DynamicGraph(edges), replicas=2, ship_lag=4,
                        max_batch=3, checkpoint_every=2) as rs:
            for i in range(15):
                rs.insert(i + 100, i + 200)
            rs.flush()
            rs.kill_primary()
            # the promoted engine went through from_journal: its floor
            # is the prefix's last checkpoint, and earlier epochs refuse
            floor = rs.primary.snapshots.min_epoch
            assert floor >= 1
            assert rs.primary.view(floor).cores() is not None
            with pytest.raises(ValueError):
                rs.primary.view(floor - 1)
            # the epoch0 boundary itself is also refused post-promotion
            if floor > 0:
                with pytest.raises(ValueError):
                    rs.primary.view(0)
