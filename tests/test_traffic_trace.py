"""The replayable trace format (ISSUE 10 tentpole, docs/traffic.md):
canonical JSONL round-trips, digest identity across representations,
strict failure on malformed input, and seeded-deterministic generators
whose traces are sequentially valid against the ideal window model."""

import gzip
import json

import pytest

from repro.graph.io import (
    canon_record,
    iter_op_trace,
    op_trace_digest,
    read_op_trace,
    write_op_trace,
)
from repro.traffic import SHAPES, TimedOp, Trace, TraceHeader, generate_trace
from repro.traffic.shapes import WindowModel


class TestRecordRoundTrip:
    def test_update_op(self):
        op = TimedOp(t=12.5, op="insert", u=3, v=7)
        assert TimedOp.from_record(op.to_record()) == op

    def test_expiry_remove_marked(self):
        op = TimedOp(t=412.5, op="remove", u=3, v=7, expiry=True)
        rec = op.to_record()
        assert rec["x"] == 1
        assert TimedOp.from_record(rec) == op

    def test_live_remove_not_marked(self):
        rec = TimedOp(t=1.0, op="remove", u=0, v=1).to_record()
        assert "x" not in rec

    def test_query_op(self):
        op = TimedOp(t=14.0, op="query", q="core", args=(3,))
        assert TimedOp.from_record(op.to_record()) == op

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            TimedOp.from_record({"t": 1.0, "op": "frobnicate", "u": 0, "v": 1})

    def test_header_round_trip(self):
        hdr = TraceHeader(shape="uniform", seed=7, window=400.0, ops=10,
                          vertices=50, slo={"update": 900.0})
        assert TraceHeader.from_record(hdr.to_record()) == hdr

    def test_header_rejects_unknown_fields(self):
        rec = TraceHeader(shape="uniform", seed=0, window=1.0, ops=0,
                          vertices=3).to_record()
        rec["surprise"] = 1
        with pytest.raises(ValueError, match="unknown trace header"):
            TraceHeader.from_record(rec)

    def test_header_rejects_future_version(self):
        rec = TraceHeader(shape="uniform", seed=0, window=1.0, ops=0,
                          vertices=3).to_record()
        rec["version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            TraceHeader.from_record(rec)


class TestFileFormat:
    def test_save_load_round_trip(self, tmp_path):
        tr = generate_trace("uniform", ops=120, vertices=30, seed=3)
        path = tmp_path / "t.jsonl"
        digest = tr.save(path)
        back = Trace.load(path)
        assert back.header == tr.header
        assert list(back) == list(tr)
        assert digest == tr.digest() == back.digest()

    def test_digest_stable_across_gzip(self, tmp_path):
        tr = generate_trace("uniform", ops=80, vertices=20, seed=1)
        plain = tmp_path / "t.jsonl"
        gz = tmp_path / "t.jsonl.gz"
        assert tr.save(plain) == tr.save(gz)
        assert op_trace_digest(plain) == op_trace_digest(gz) == tr.digest()

    def test_canonical_bytes(self, tmp_path):
        """Every line is canonical JSON: sorted keys, no whitespace."""
        tr = generate_trace("uniform", ops=40, vertices=10, seed=2)
        path = tmp_path / "t.jsonl"
        tr.save(path)
        for line in path.read_text().splitlines():
            assert line == canon_record(json.loads(line))

    def test_header_must_come_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(canon_record({"t": 1.0, "op": "insert",
                                      "u": 0, "v": 1}) + "\n")
        with pytest.raises(ValueError, match="must be the header"):
            list(iter_op_trace(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            list(iter_op_trace(path))

    def test_malformed_record_fails_loudly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        digest = write_op_trace(path, {"shape": "uniform"}, [])
        assert digest
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            list(iter_op_trace(path))

    def test_record_without_t_fails(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_op_trace(path, {"shape": "uniform"},
                       [{"op": "insert", "u": 0, "v": 1}])
        with pytest.raises(ValueError, match="lacks 't'/'op'"):
            list(iter_op_trace(path))

    def test_out_of_order_ops_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        hdr = TraceHeader(shape="uniform", seed=0, window=10.0, ops=2,
                          vertices=3)
        write_op_trace(path, hdr.to_record(), [
            TimedOp(t=5.0, op="insert", u=0, v=1).to_record(),
            TimedOp(t=1.0, op="insert", u=1, v=2).to_record(),
        ])
        with pytest.raises(ValueError, match="out of order"):
            list(Trace.load(path))

    def test_read_op_trace_whole_file(self, tmp_path):
        tr = generate_trace("uniform", ops=30, vertices=10, seed=4)
        path = tmp_path / "t.jsonl.gz"
        tr.save(path)
        header, ops = read_op_trace(path)
        assert header["shape"] == "uniform"
        assert len(ops) == tr.header.ops
        with gzip.open(path, "rt") as fh:
            assert len(fh.readlines()) == len(ops) + 1


class TestGenerator:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_deterministic_per_seed(self, shape):
        a = generate_trace(shape, ops=150, vertices=40, seed=11)
        b = generate_trace(shape, ops=150, vertices=40, seed=11)
        c = generate_trace(shape, ops=150, vertices=40, seed=12)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    @pytest.mark.parametrize("shape", SHAPES)
    def test_sequentially_valid(self, shape):
        """Inserts target absent edges, expiry removes exactly present
        edges at exactly ``arrival + window``, times non-decreasing."""
        window = 500.0
        tr = generate_trace(shape, ops=300, vertices=40, seed=5,
                            window=window, drain=True)
        model = {}
        prev = float("-inf")
        for op in tr:
            assert op.t >= prev
            prev = op.t
            if op.op == "insert":
                e = (op.u, op.v)
                assert e not in model
                assert op.u < op.v
                model[e] = op.t + window
            elif op.op == "remove":
                assert op.expiry  # the window is the only remover
                e = (op.u, op.v)
                assert model.pop(e) == pytest.approx(op.t)
        assert not model  # drain=True ends on the empty graph

    def test_arrival_count_is_exact(self):
        tr = generate_trace("uniform", ops=200, vertices=50, seed=1)
        arrivals = sum(1 for op in tr if not op.expiry)
        assert arrivals == 200

    def test_flash_burst_pins_hub(self):
        tr = generate_trace("flash", ops=400, vertices=50, seed=9,
                            hub=4, factor=10.0)
        b0 = tr.header.params["burst_start"]
        b1 = b0 + tr.header.params["burst_len"]
        in_burst = [op for op in tr
                    if op.op == "insert" and b0 <= op.t < b1]
        assert in_burst
        assert all(4 in (op.u, op.v) for op in in_burst)

    def test_overload_is_denser_than_uniform(self):
        u = generate_trace("uniform", ops=300, vertices=60, seed=2)
        o = generate_trace("overload", ops=300, vertices=60, seed=2)
        u_span = max(op.t for op in u if not op.expiry)
        o_span = max(op.t for op in o if not op.expiry)
        assert o_span < u_span / 5  # factor 10 compressed the clock

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            generate_trace("mystery", ops=10, vertices=5)

    def test_unknown_shape_param_rejected(self):
        with pytest.raises(TypeError, match="unknown parameters"):
            generate_trace("diurnal", ops=10, vertices=5, hub=3)

    def test_header_carries_slo_and_params(self):
        tr = generate_trace("diurnal", ops=50, vertices=20, seed=0,
                            slo={"update": 123.0}, cycles=3)
        assert tr.header.slo == {"update": 123.0}
        assert tr.header.params["cycles"] == 3


class TestWindowModel:
    def test_add_discard_membership(self):
        m = WindowModel()
        m.add((0, 1), 10.0)
        assert (0, 1) in m and len(m) == 1
        m.discard((0, 1))
        assert (0, 1) not in m and len(m) == 0
        m.discard((0, 1))  # idempotent

    def test_duplicate_add_rejected(self):
        m = WindowModel()
        m.add((0, 1), 10.0)
        with pytest.raises(ValueError, match="already present"):
            m.add((0, 1), 20.0)

    def test_pop_due_in_due_order(self):
        m = WindowModel()
        m.add((0, 1), 30.0)
        m.add((1, 2), 10.0)
        m.add((2, 3), 20.0)
        assert m.pop_due(25.0) == [(10.0, (1, 2)), (20.0, (2, 3))]
        assert m.edges() == [(0, 1)]

    def test_pop_due_skips_stale_after_discard(self):
        m = WindowModel()
        m.add((0, 1), 10.0)
        m.discard((0, 1))
        m.add((0, 1), 50.0)  # re-added with a later due
        assert m.pop_due(20.0) == []
        assert (0, 1) in m

    def test_sampling_covers_present_edges(self):
        import random

        m = WindowModel()
        for i in range(10):
            m.add((i, i + 1), float(i))
        m.discard((3, 4))
        rng = random.Random(0)
        seen = {m.sample_edge(rng) for _ in range(400)}
        assert seen == set(m.edges())


class TestBundledTraces:
    """The traces under ``examples/traces/`` are committed artifacts the
    CI traffic-smoke job replays; their digests are pinned so format or
    generator drift cannot slip in silently (regenerate deliberately
    with ``generate_trace(shape, ops=400, vertices=60, seed=7)``)."""

    PINNED = {
        "uniform": "2e9d894d4f1eb6e4ad1c123bc0205715"
                   "388f8a90fe05cce3a2f4a756eac40862",
        "diurnal": "35d17b47918740e6a9183bfb19794aed"
                   "3c64d848bd0e78ef8a018c3fedea5035",
        "flash": "03903d34b115124f367147e85694dc52"
                 "ccecd2d9b1df27645657fa660c979050",
        "overload": "ddcb7a428d8c64d754c4d64cb130554c"
                    "6af65f683cfcf32fa3fed3ee179e7cea",
    }

    @pytest.mark.parametrize("shape", sorted(PINNED))
    def test_digest_pinned(self, shape):
        import pathlib

        path = (pathlib.Path(__file__).parent.parent
                / "examples" / "traces" / f"{shape}.jsonl")
        tr = Trace.load(path)
        assert tr.digest() == self.PINNED[shape]
        assert tr.header.shape == shape

    @pytest.mark.parametrize("shape", sorted(PINNED))
    def test_bundled_equals_regenerated(self, shape):
        assert (generate_trace(shape, ops=400, vertices=60, seed=7).digest()
                == self.PINNED[shape])
