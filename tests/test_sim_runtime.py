"""Tests for the discrete-event simulated machine and lock primitives."""
# lint: file-ok[RL001, RL002, RL003]  — workers here deliberately violate
# the protocol to exercise the runtime's dynamic detectors

import pytest

from repro.parallel.costs import CostModel
from repro.parallel.runtime import (
    SimDeadlockError,
    SimMachine,
    cond_acquire,
    lock_pair,
    release_all,
)

C = CostModel()


def run(machine, *bodies):
    return machine.run(list(bodies))


class TestTicks:
    def test_single_worker_clock(self):
        def w():
            yield ("tick", 5.0)
            yield ("tick", 7.0)

        rep = run(SimMachine(1), w())
        assert rep.makespan == 12.0
        assert rep.total_work == 12.0
        assert rep.worker_clocks == [12.0]

    def test_parallel_independent_work(self):
        def w(cost):
            def body():
                yield ("tick", cost)

            return body()

        rep = run(SimMachine(2), w(10.0), w(4.0))
        assert rep.makespan == 10.0
        assert rep.total_work == 14.0

    def test_empty_bodies(self):
        rep = SimMachine(4).run([])
        assert rep.makespan == 0.0

    def test_more_bodies_than_workers_rejected(self):
        def w():
            yield ("tick", 1.0)

        with pytest.raises(ValueError):
            SimMachine(1).run([w(), w()])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SimMachine(0)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            SimMachine(1, schedule="bogus")


class TestLocks:
    def test_try_acquire_free_lock(self):
        got = {}

        def w():
            got["ok"] = yield ("try", "L")
            yield ("release", "L")

        rep = run(SimMachine(1), w())
        assert got["ok"] is True
        assert rep.lock_acquires == 1

    def test_contention_blocks_second_worker(self):
        order = []

        def holder():
            yield ("try", "L")
            yield ("tick", 100.0)
            order.append("holder-done")
            yield ("release", "L")

        def waiter():
            while not (yield ("try", "L")):
                yield ("spin",)
            order.append("waiter-got-it")
            yield ("release", "L")

        rep = run(SimMachine(2), holder(), waiter())
        assert order == ["holder-done", "waiter-got-it"]
        assert rep.lock_failures > 0
        assert rep.spin_time > 0

    def test_release_not_held_raises(self):
        def w():
            yield ("release", "L")

        with pytest.raises(RuntimeError):
            run(SimMachine(1), w())

    def test_reacquire_own_lock_raises(self):
        def w():
            yield ("try", "L")
            yield ("try", "L")

        with pytest.raises(RuntimeError):
            run(SimMachine(1), w())

    def test_unknown_event_raises(self):
        def w():
            yield ("frobnicate",)

        with pytest.raises(RuntimeError):
            run(SimMachine(1), w())


class TestHelpers:
    def test_lock_pair_acquires_both(self):
        def w():
            yield from lock_pair("A", "B")
            yield from release_all(["A", "B"])

        rep = run(SimMachine(1), w())
        assert rep.lock_acquires == 2

    def test_lock_pair_backs_off_completely(self):
        """If the second lock is held, the first is released before
        retrying — no hold-and-wait."""
        trace = []

        def hog():
            yield ("try", "B")
            yield ("tick", 50.0)
            yield ("release", "B")

        def pairer():
            yield ("tick", 1.0)  # let hog get B first
            yield from lock_pair("A", "B")
            trace.append("got-both")
            yield from release_all(["A", "B"])

        def prober():
            # while pairer is backing off, A must be observable as free
            yield ("tick", 10.0)
            ok = yield ("try", "A")
            trace.append(("probe", ok))
            if ok:
                yield ("release", "A")

        rep = run(SimMachine(3), hog(), pairer(), prober())
        assert ("probe", True) in trace
        assert "got-both" in trace

    def test_cond_acquire_true_condition(self):
        def w():
            ok = yield from cond_acquire("L", lambda: True)
            assert ok
            yield ("release", "L")

        run(SimMachine(1), w())

    def test_cond_acquire_false_condition_returns_immediately(self):
        res = {}

        def w():
            res["ok"] = yield from cond_acquire("L", lambda: False)

        rep = run(SimMachine(1), w())
        assert res["ok"] is False
        assert rep.lock_acquires == 0

    def test_cond_acquire_gives_up_when_condition_flips(self):
        """Algorithm 2's point: a waiter spinning on a held lock exits as
        soon as the condition becomes false."""
        flag = {"v": True}
        res = {}

        def holder():
            yield ("try", "L")
            yield ("tick", 50.0)
            flag["v"] = False  # condition flips while still holding L
            yield ("tick", 50.0)
            yield ("release", "L")

        def waiter():
            yield ("tick", 1.0)
            res["ok"] = yield from cond_acquire("L", lambda: flag["v"])

        run(SimMachine(2), holder(), waiter())
        assert res["ok"] is False

    def test_cond_acquire_released_if_condition_flipped_after_lock(self):
        calls = {"n": 0}

        def cond():
            calls["n"] += 1
            return calls["n"] == 1  # true on first check, false after lock

        res = {}

        def w():
            res["ok"] = yield from cond_acquire("L", cond)
            # lock must have been released: we can take it again
            res["again"] = yield ("try", "L")

        run(SimMachine(1), w())
        assert res["ok"] is False
        assert res["again"] is True


class TestScheduling:
    def test_min_clock_deterministic(self):
        def mk():
            def w(n):
                def body():
                    for _ in range(n):
                        yield ("tick", 1.0)

                return body()

            return [w(5), w(3), w(8)]

        r1 = SimMachine(3).run(mk())
        r2 = SimMachine(3).run(mk())
        assert r1.worker_clocks == r2.worker_clocks
        assert r1.events == r2.events

    def test_random_schedule_seeded(self):
        def mk():
            def w():
                for _ in range(10):
                    yield ("tick", 1.0)

            return [w(), w()]

        a = SimMachine(2, schedule="random", seed=1).run(mk())
        b = SimMachine(2, schedule="random", seed=1).run(mk())
        assert a.worker_clocks == b.worker_clocks

    def test_deadlock_detection(self):
        """Classic hold-and-wait cycle must be detected, not spin forever."""

        def w1():
            yield ("try", "A")
            while not (yield ("try", "B")):
                yield ("spin",)

        def w2():
            yield ("try", "B")
            while not (yield ("try", "A")):
                yield ("spin",)

        machine = SimMachine(2, max_stall_events=2000)
        with pytest.raises(SimDeadlockError):
            machine.run([w1(), w2()])

    def test_deadlock_names_the_cycle(self):
        """The waits-for detector must spell out who waits on whom."""

        def w1():
            yield ("try", "A")
            while not (yield ("try", "B")):
                yield ("spin",)

        def w2():
            yield ("try", "B")
            while not (yield ("try", "A")):
                yield ("spin",)

        machine = SimMachine(2, deadlock_window=50)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run([w1(), w2()])
        err = ei.value
        assert "waits-for cycle" in str(err)
        assert {w for w, _k, _h in err.cycle} == {0, 1}
        assert {k for _w, k, _h in err.cycle} == {"A", "B"}
        assert err.holders == {"A": 0, "B": 1}
        assert err.waiters == {0: "B", 1: "A"}

    def test_three_worker_cycle_detected(self):
        def w(mine, want):
            def body():
                yield ("try", mine)
                while not (yield ("try", want)):
                    yield ("spin",)

            return body()

        machine = SimMachine(3, deadlock_window=50)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run([w("A", "B"), w("B", "C"), w("C", "A")])
        assert len(ei.value.cycle) == 3

    def test_cycle_not_reported_before_window(self):
        """A transient cycle that resolves before ``deadlock_window``
        events (the cond_acquire give-up pattern) must not be reported."""
        flag = {"v": True}

        def w1():
            yield ("try", "A")
            # conditional-waiter shape: give up when the flag flips
            while flag["v"]:
                if (yield ("try", "B")):
                    yield ("release", "B")
                    break
                yield ("spin",)
            yield ("release", "A")

        def w2():
            yield ("try", "B")
            for _ in range(20):  # hold briefly, then give way
                yield ("spin",)
            flag["v"] = False
            yield ("release", "B")

        rep = SimMachine(2, deadlock_window=10_000).run([w1(), w2()])
        assert rep.lock_failures > 0  # there WAS a transient wait

    def test_livelock_fallback_reports_holders_and_waiters(self):
        """A worker that finishes while holding a lock leaves no cycle —
        the stall-window fallback must still fire and name both sides."""

        def hog():
            yield ("try", "L")
            # ends still holding L

        def waiter():
            while not (yield ("try", "L")):
                yield ("spin",)

        machine = SimMachine(2, max_stall_events=500)
        with pytest.raises(SimDeadlockError) as ei:
            machine.run([hog(), waiter()])
        err = ei.value
        assert err.holders == {"L": 0}
        assert err.waiters == {1: "L"}
        assert err.cycle == []
        assert "waiters" in str(err)

    def test_costs_respected(self):
        costs = CostModel(lock_acquire=10.0, lock_release=3.0)

        def w():
            yield ("try", "L")
            yield ("release", "L")

        rep = SimMachine(1, costs=costs).run([w()])
        assert rep.makespan == 13.0


def assert_buckets_reconcile(rep):
    """SimReport invariant: every event charges exactly one bucket."""
    assert rep.total_work + rep.spin_time + rep.contended_time == pytest.approx(
        sum(rep.worker_clocks)
    )


class TestAccounting:
    def test_buckets_reconcile_under_contention(self):
        def holder():
            yield ("try", "L")
            yield ("tick", 50.0)
            yield ("release", "L")

        def waiter():
            while not (yield ("try", "L")):
                yield ("spin",)
            yield ("release", "L")

        rep = SimMachine(2).run([holder(), waiter()])
        assert rep.contended_time > 0
        assert rep.spin_time > 0
        assert_buckets_reconcile(rep)

    def test_contended_time_counts_failed_cas(self):
        costs = CostModel(cas_fail=7.0)

        def holder():
            yield ("try", "L")
            yield ("tick", 10.0)
            yield ("release", "L")

        def prober():
            yield ("try", "L")  # one failed CAS, then give up

        rep = SimMachine(2, costs=costs).run([holder(), prober()])
        assert rep.lock_failures == 1
        assert rep.contended_time == 7.0
        assert_buckets_reconcile(rep)

    def test_buckets_reconcile_on_real_parallel_batches(self):
        from repro.graph.dynamic_graph import DynamicGraph
        from repro.graph.generators import erdos_renyi
        from repro.parallel.batch import ParallelOrderMaintainer

        edges = erdos_renyi(35, 110, seed=5)
        base, batch = edges[:-35], edges[-35:]
        for schedule, seed in (("min-clock", 0), ("random", 1), ("random", 2)):
            m = ParallelOrderMaintainer(
                DynamicGraph(base), num_workers=4, schedule=schedule, seed=seed
            )
            r1 = m.insert_edges(batch)
            r2 = m.remove_edges(batch[:12])
            assert_buckets_reconcile(r1.report)
            assert_buckets_reconcile(r2.report)
            m.check()


class TestSharedAccessEvents:
    def test_read_write_events_are_free_noops_without_detector(self):
        def w():
            yield ("read", ("x", 1))
            yield ("write", ("x", 1), "me.py:1")
            yield ("tick", 2.0)

        rep = SimMachine(1).run([w()])
        assert rep.makespan == 2.0  # read/write cost nothing
        assert rep.events == 3
        assert_buckets_reconcile(rep)

    def test_read_write_events_feed_detector(self):
        from repro.analysis import RaceDetector

        det = RaceDetector()

        def w(site):
            yield ("write", ("x", 1), site)
            yield ("tick", 1.0)

        SimMachine(2, detector=det).run([w("a.py:1"), w("b.py:2")])
        rep = det.report()
        assert rep.accesses_traced == 2
        assert len(rep.races) == 1
