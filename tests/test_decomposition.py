"""Tests for static core decomposition (BZ + ParK variant).

networkx is available offline, so BZ is cross-validated against
``networkx.core_number`` on every generator family.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    STRATEGIES,
    core_decomposition,
    core_histogram,
    park_decomposition,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from tests.conftest import small_graph_families


def nx_cores(g: DynamicGraph):
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return nx.core_number(h)


class TestBZKnownGraphs:
    def test_empty_graph(self):
        d = core_decomposition(DynamicGraph())
        assert d.core == {}
        assert d.order == []
        assert d.max_core == 0

    def test_single_edge(self):
        d = core_decomposition(DynamicGraph([(0, 1)]))
        assert d.core == {0: 1, 1: 1}

    def test_isolated_vertex(self):
        g = DynamicGraph([(0, 1)])
        g.add_vertex(9)
        d = core_decomposition(g)
        assert d.core[9] == 0

    def test_triangle(self, triangle_graph):
        d = core_decomposition(triangle_graph)
        assert set(d.core.values()) == {2}

    def test_star(self):
        g = DynamicGraph([(0, i) for i in range(1, 8)])
        d = core_decomposition(g)
        assert all(v == 1 for v in d.core.values())

    def test_clique(self):
        n = 6
        g = DynamicGraph([(i, j) for i in range(n) for j in range(i + 1, n)])
        d = core_decomposition(g)
        assert set(d.core.values()) == {n - 1}

    def test_path(self):
        g = DynamicGraph([(i, i + 1) for i in range(9)])
        assert set(core_decomposition(g).core.values()) == {1}

    def test_two_triangles_bridge(self, two_triangles_bridge):
        d = core_decomposition(two_triangles_bridge)
        assert set(d.core.values()) == {2}


class TestBZAgainstNetworkx:
    @pytest.mark.parametrize(
        "name,edges", small_graph_families(), ids=lambda p: p if isinstance(p, str) else ""
    )
    def test_families(self, name, edges):
        g = DynamicGraph(edges)
        assert core_decomposition(g).core == nx_cores(g)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_er(self, seed):
        g = DynamicGraph(erdos_renyi(30, 70, seed=seed))
        assert core_decomposition(g).core == nx_cores(g)


class TestKOrderProperties:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_order_is_valid_peel_sequence(self, strategy):
        g = DynamicGraph(erdos_renyi(60, 180, seed=5))
        d = core_decomposition(g, strategy=strategy)
        pos = {u: i for i, u in enumerate(d.order)}
        # cores non-decreasing along the order
        cores_seq = [d.core[u] for u in d.order]
        assert cores_seq == sorted(cores_seq)
        # nobody has more later-neighbors than its core number
        for u in g.vertices():
            post = sum(1 for v in g.neighbors(u) if pos[v] > pos[u])
            assert post <= d.core[u]

    def test_d_out_matches_positions(self):
        g = DynamicGraph(erdos_renyi(50, 140, seed=6))
        d = core_decomposition(g)
        pos = {u: i for i, u in enumerate(d.order)}
        for u in g.vertices():
            assert d.d_out[u] == sum(
                1 for v in g.neighbors(u) if pos[v] > pos[u]
            )

    def test_order_covers_all_vertices_once(self):
        g = DynamicGraph(erdos_renyi(40, 90, seed=7))
        d = core_decomposition(g)
        assert sorted(d.order) == sorted(g.vertices())

    def test_strategies_same_cores_different_orders(self):
        g = DynamicGraph(erdos_renyi(60, 180, seed=8))
        results = {s: core_decomposition(g, strategy=s) for s in STRATEGIES}
        cores = [r.core for r in results.values()]
        assert all(c == cores[0] for c in cores)
        orders = {tuple(r.order) for r in results.values()}
        assert len(orders) >= 2  # tie-breaks genuinely differ

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            core_decomposition(DynamicGraph([(0, 1)]), strategy="bogus")

    def test_random_strategy_seeded(self):
        g = DynamicGraph(erdos_renyi(40, 100, seed=9))
        a = core_decomposition(g, strategy="random", seed=1)
        b = core_decomposition(g, strategy="random", seed=1)
        assert a.order == b.order


class TestHistogram:
    def test_histogram_counts(self):
        hist = core_histogram({1: 0, 2: 1, 3: 1, 4: 2})
        assert hist == {0: 1, 1: 2, 2: 1}

    def test_histogram_sorted_keys(self):
        hist = core_histogram({i: i % 3 for i in range(30)})
        assert list(hist.keys()) == sorted(hist.keys())

    def test_decomposition_histogram_total(self):
        g = DynamicGraph(erdos_renyi(50, 120, seed=10))
        d = core_decomposition(g)
        assert sum(d.histogram().values()) == g.num_vertices


class TestParK:
    @pytest.mark.parametrize(
        "name,edges", small_graph_families(1), ids=lambda p: p if isinstance(p, str) else ""
    )
    def test_matches_bz(self, name, edges):
        g = DynamicGraph(edges)
        core, rounds = park_decomposition(g)
        assert core == core_decomposition(g).core
        assert sum(len(r) for r in rounds) == g.num_vertices

    def test_rounds_expose_parallel_width(self):
        # a star peels all leaves in one wide round
        g = DynamicGraph([(0, i) for i in range(1, 30)])
        _, rounds = park_decomposition(g)
        assert max(len(r) for r in rounds) >= 29

    def test_empty(self):
        core, rounds = park_decomposition(DynamicGraph())
        assert core == {} and rounds == []
