"""Tests for OurR — parallel Order removal (Algorithm 6)."""

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, erdos_renyi, rmat
from repro.parallel.batch import ParallelOrderMaintainer
from tests.conftest import assert_cores_match_bz


class TestSmallBatches:
    def test_break_triangle_parallel(self):
        m = ParallelOrderMaintainer(
            DynamicGraph([(0, 1), (1, 2), (0, 2)]), num_workers=2
        )
        res = m.remove_edges([(0, 1)])
        assert sorted(res.stats[0].v_star) == [0, 1, 2]
        m.check()

    def test_two_independent_regions(self):
        g = DynamicGraph(
            [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)]
        )
        m = ParallelOrderMaintainer(g, num_workers=2)
        m.remove_edges([(0, 1), (10, 11)])
        assert all(m.core(u) == 1 for u in (0, 1, 2, 10, 11, 12))
        m.check()

    def test_overlapping_cascades(self):
        """Two removed edges whose drop cascades meet — the conditional
        lock / t-protocol interaction case (paper's Figure 2)."""
        # 6-clique: removing two disjoint edges drops everyone 5 -> 4
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=2)
        m.remove_edges([(0, 1), (2, 3)])
        m.check()
        assert_cores_match_bz(m)

    def test_empty_batch(self):
        m = ParallelOrderMaintainer(DynamicGraph([(0, 1)]), num_workers=2)
        res = m.remove_edges([])
        assert res.makespan == 0.0

    def test_remove_entire_graph(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=4)
        m.remove_edges(edges)
        assert all(m.core(u) == 0 for u in range(4))
        m.check()


class TestReports:
    def test_one_worker_equals_sequential_work(self):
        edges = erdos_renyi(50, 160, seed=1)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=1)
        res = m.remove_edges(edges[-40:])
        assert res.makespan == pytest.approx(res.report.total_work)

    def test_v_plus_equals_v_star_for_removal(self):
        edges = erdos_renyi(50, 160, seed=2)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=4)
        res = m.remove_edges(edges[-30:])
        for s in res.stats:
            assert s.v_plus == s.v_star

    def test_multiworker_speedup(self):
        edges = barabasi_albert(200, 4, seed=3)
        batch = edges[-100:]
        t1 = (
            ParallelOrderMaintainer(DynamicGraph(edges), num_workers=1)
            .remove_edges(batch)
            .makespan
        )
        t8 = (
            ParallelOrderMaintainer(DynamicGraph(edges), num_workers=8)
            .remove_edges(batch)
            .makespan
        )
        assert t8 < t1


class TestCorrectnessAcrossSchedules:
    @pytest.mark.parametrize("workers", [2, 3, 5, 8])
    def test_min_clock(self, workers):
        edges = erdos_renyi(60, 220, seed=4)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=workers)
        m.remove_edges(edges[-70:])
        m.check()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules(self, seed):
        edges = erdos_renyi(60, 220, seed=5)
        m = ParallelOrderMaintainer(
            DynamicGraph(edges), num_workers=4, schedule="random", seed=seed
        )
        m.remove_edges(edges[-70:])
        m.check()

    def test_uniform_core_graph(self):
        edges = barabasi_albert(200, 3, seed=6)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=8)
        m.remove_edges(edges[-90:])
        m.check()

    def test_skewed_graph(self):
        edges = rmat(8, 3, seed=7)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=6)
        m.remove_edges(edges[-80:])
        m.check()

    def test_remove_then_insert_roundtrip(self):
        edges = erdos_renyi(60, 200, seed=8)
        batch = edges[-60:]
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=4)
        before = m.cores()
        m.remove_edges(batch)
        m.insert_edges(batch)
        m.check()
        assert m.cores() == before  # cores depend only on the final graph
