"""Unit tests for the sequential Order insertion (OI, Algorithms 7-9)."""

import pytest

from repro.core.maintainer import OrderMaintainer
from repro.core.state import OrderState
from repro.core.order_insert import KOrderPQ, order_insert_edge
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from tests.conftest import assert_cores_match_bz


class TestSingleInsertions:
    def test_no_maintenance_needed(self):
        # connecting an existing core-1 vertex to a triangle: no change
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2), (3, 4)]))
        stats = m.insert_edge(2, 3)
        assert stats.v_star == []
        assert m.core(3) == 1
        m.check()

    def test_new_vertex_promoted_to_core_one(self):
        # a brand-new pendant vertex rises 0 -> 1 (it *is* a candidate)
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
        stats = m.insert_edge(2, 3)
        assert stats.v_star == [3]
        assert m.core(3) == 1
        m.check()

    def test_triangle_completion_promotes(self):
        # path 0-1-2 plus closing edge -> all three reach core 2
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2)]))
        stats = m.insert_edge(0, 2)
        assert sorted(stats.v_star) == [0, 1, 2]
        assert all(m.core(u) == 2 for u in (0, 1, 2))
        m.check()

    def test_new_vertex_single_edge(self):
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
        m.insert_edge(99, 0)
        assert m.core(99) == 1
        m.check()

    def test_edge_between_two_new_vertices(self):
        m = OrderMaintainer(DynamicGraph([(0, 1), (1, 2), (0, 2)]))
        m.insert_edge("a", "b")
        assert m.core("a") == m.core("b") == 1
        m.check()

    def test_first_edge_of_empty_graph(self):
        m = OrderMaintainer(DynamicGraph())
        m.insert_edge(1, 2)
        assert m.core(1) == m.core(2) == 1
        m.check()

    def test_duplicate_insert_raises(self):
        m = OrderMaintainer(DynamicGraph([(0, 1)]))
        with pytest.raises(ValueError):
            m.insert_edge(1, 0)

    def test_k4_completion(self):
        # K4 minus one edge has cores (2,2,3?) -> closing it gives all 3
        m = OrderMaintainer(
            DynamicGraph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        )
        m.insert_edge(2, 3)
        assert all(m.core(u) == 3 for u in range(4))
        m.check()

    def test_backward_case_no_promotion(self):
        """A vertex reachable from the root that cannot be a candidate
        forces the Backward path: the k-order is re-threaded but cores
        stay unchanged."""
        # two triangles sharing no edge, connected by one vertex path
        g = DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        m = OrderMaintainer(g)
        before = m.cores()
        stats = m.insert_edge(4, 2)  # creates a second triangle 2-3-4
        assert sorted(stats.v_star) == [3, 4]
        m.check()
        assert m.core(3) == m.core(4) == 2
        assert m.core(0) == before[0]

    def test_v_plus_superset_of_v_star(self):
        g = DynamicGraph(erdos_renyi(40, 120, seed=1))
        m = OrderMaintainer(g)
        for e in erdos_renyi(40, 780, seed=9)[:60]:
            if not m.graph.has_edge(*e):
                stats = m.insert_edge(*e)
                assert set(stats.v_star) <= set(stats.v_plus)
        m.check()

    def test_core_rises_at_most_one_per_edge(self):
        g = DynamicGraph(erdos_renyi(30, 60, seed=2))
        m = OrderMaintainer(g)
        for e in erdos_renyi(30, 420, seed=5)[:80]:
            if not m.graph.has_edge(*e):
                before = m.cores()
                m.insert_edge(*e)
                after = m.cores()
                for u in before:
                    assert 0 <= after[u] - before[u] <= 1

    def test_candidates_all_had_core_k(self):
        g = DynamicGraph(erdos_renyi(30, 90, seed=3))
        m = OrderMaintainer(g)
        for e in erdos_renyi(30, 400, seed=6)[:80]:
            if not m.graph.has_edge(*e):
                before = m.cores()
                ko = m.state.korder
                u, v = e
                k = min(before[u], before[v]) if u in before and v in before else 0
                stats = m.insert_edge(*e)
                for w in stats.v_star:
                    assert before.get(w, 0) == k or w not in before


class TestKOrderPQ:
    def _mk(self):
        g = DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        state = OrderState.from_graph(g)
        return state.korder

    def test_pops_in_order(self):
        ko = self._mk()
        seq = ko.full_sequence()
        pq = KOrderPQ(ko)
        for v in reversed(seq):
            pq.push(v)
        assert [pq.pop() for _ in seq] == seq
        assert pq.pop() is None

    def test_push_idempotent(self):
        ko = self._mk()
        seq = ko.full_sequence()
        pq = KOrderPQ(ko)
        pq.push(seq[0])
        pq.push(seq[0])
        assert len(pq) == 1
        assert pq.pop() == seq[0]
        assert len(pq) == 0

    def test_contains(self):
        ko = self._mk()
        seq = ko.full_sequence()
        pq = KOrderPQ(ko)
        pq.push(seq[1])
        assert seq[1] in pq and seq[0] not in pq

    def test_rekey_after_move(self):
        ko = self._mk()
        seq2 = ko.sequence(2)
        assert len(seq2) >= 3
        pq = KOrderPQ(ko)
        for v in seq2:
            pq.push(v)
        # move the order-first queued vertex to the back of the segment
        ko.move_after_vertex(seq2[-1], seq2[0])
        popped = [pq.pop() for _ in seq2]
        assert popped == ko.sequence(2)  # agrees with the *new* order


class TestEndPhaseInvariants:
    def test_dout_refreshed_for_winners(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        state = OrderState.from_graph(g)
        order_insert_edge(state, 0, 2)
        state.check_invariants()

    def test_promoted_go_to_head_of_next_segment(self):
        g = DynamicGraph([(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)])
        state = OrderState.from_graph(g)
        stats = order_insert_edge(state, 0, 2)  # 0,1,2 promoted to core 2
        seq2 = state.korder.sequence(2)
        # the winners occupy the head of O_2, in V*-insertion order
        assert seq2[: len(stats.v_star)] == stats.v_star
        state.check_invariants()

    def test_mcd_invalidated_around_winners(self):
        g = DynamicGraph([(0, 1), (1, 2), (2, 3)])
        state = OrderState.from_graph(g)
        for u in g.vertices():
            state.ensure_mcd(u)
        order_insert_edge(state, 0, 2)
        for w in (0, 1, 2):
            assert state.mcd[w] is None
        state.check_invariants()


def test_insert_heavy_sequence_stays_consistent():
    g = DynamicGraph(erdos_renyi(50, 100, seed=4))
    m = OrderMaintainer(g)
    extra = [e for e in erdos_renyi(50, 500, seed=11) if not g.has_edge(*e)]
    for i, e in enumerate(extra[:150]):
        m.insert_edge(*e)
        if i % 30 == 0:
            m.check()
    m.check()
    assert_cores_match_bz(m)
