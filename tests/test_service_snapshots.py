"""Tests for epoch-versioned snapshots (repro.service.snapshots) and the
CoreHistory batch-epoch extensions."""

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.history import CoreHistory
from repro.core.maintainer import OrderMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from repro.service.snapshots import FrozenCoreMap, SnapshotStore, SnapshotView


def triangle_plus_tail():
    return DynamicGraph([(0, 1), (1, 2), (0, 2), (2, 3)])


class TestCoreHistoryEpochs:
    def test_record_epoch_advances_time_and_records(self):
        m = ParallelOrderMaintainer(triangle_plus_tail(), num_workers=2)
        h = CoreHistory(m)
        m.insert_edges([(0, 3), (1, 3)])
        t = h.record_epoch([0, 1, 2, 3])
        assert t == 1 == h.t
        assert h.core_at(3, 0) == 1      # before the batch
        assert h.core_at(3, 1) == 3      # after the batch
        h.check()

    def test_cores_at_materializes_full_snapshot(self):
        m = ParallelOrderMaintainer(triangle_plus_tail(), num_workers=2)
        h = CoreHistory(m)
        before = h.cores_at(0)
        assert before == core_decomposition(triangle_plus_tail()).core
        m.insert_edges([(0, 3), (1, 3)])
        h.record_epoch([0, 1, 2, 3])
        assert h.cores_at(0) == before   # old epoch unchanged
        assert h.cores_at(1) == m.cores()

    def test_vertex_absent_before_first_record(self):
        m = OrderMaintainer(DynamicGraph([(0, 1)]))
        h = CoreHistory(m)
        m.insert_edge(5, 0)
        h.record_epoch([5, 0])
        assert 5 not in h.cores_at(0)
        assert h.cores_at(1)[5] == 1


class TestSnapshotStore:
    def test_views_are_isolated_per_epoch(self):
        m = ParallelOrderMaintainer(triangle_plus_tail(), num_workers=2)
        store = SnapshotStore(m)
        v0 = store.view()
        assert v0.epoch == 0 and v0.core(3) == 1
        res = m.insert_edges([(0, 3), (1, 3)])
        touched = {0, 1, 2, 3} | {w for s in res.stats for w in s.v_star}
        assert store.commit(touched) == 1
        # the old view object still answers with epoch-0 values
        assert v0.core(3) == 1
        assert store.view().core(3) == 3
        assert store.view(0).core(3) == 1

    def test_view_queries_match_queries_module(self):
        m = ParallelOrderMaintainer(triangle_plus_tail(), num_workers=2)
        store = SnapshotStore(m)
        v = store.view()
        assert v.k_core(2) == {0, 1, 2}
        assert v.k_shell(1) == {3}
        assert v.in_k_core(0, 2) and not v.in_k_core(3, 2)
        assert v.degeneracy() == 2
        kmax, inner = v.innermost()
        assert kmax == 2 and inner == {0, 1, 2}
        assert v.shell_histogram() == {1: 1, 2: 3}
        assert v.core(99) is None and 99 not in v

    def test_evicted_epochs_rebuilt_from_deltas(self):
        g = DynamicGraph([(i, i + 1) for i in range(10)])
        m = ParallelOrderMaintainer(g, num_workers=2)
        store = SnapshotStore(m, cache_epochs=2)
        snapshots = {0: store.view(0).cores()}
        for i in range(5):
            res = m.insert_edges([(i, i + 5)])
            touched = {i, i + 5} | {w for s in res.stats for w in s.v_star}
            e = store.commit(touched)
            snapshots[e] = dict(m.cores())
        # every historical epoch answers correctly even after eviction
        for e, cores in snapshots.items():
            assert store.view(e).cores() == cores

    def test_cached_results_are_read_only(self):
        """The cached accessors hand the *same* object to every caller
        (and the in-engine QUERY_KINDS path ships it as a response
        value) — mutating one must raise, not silently corrupt the
        per-epoch cache served to every later query."""
        v = SnapshotView(0, {0: 2, 1: 2, 2: 2, 3: 1})
        for mutate in (
            lambda: v.cores().__setitem__(9, 9),
            lambda: v.cores().pop(0),
            lambda: v.cores().update({0: 9}),
            lambda: v.cores().clear(),
            lambda: v.shell_histogram().__setitem__(2, 0),
        ):
            with pytest.raises(TypeError, match="read-only"):
                mutate()
        assert isinstance(v.k_core(2), frozenset)
        assert isinstance(v.k_shell(1), frozenset)
        assert isinstance(v.innermost()[1], frozenset)
        # frozen results still compare as the plain types
        assert v.cores() == {0: 2, 1: 2, 2: 2, 3: 1}
        assert v.k_core(2) == {0, 1, 2}
        # the documented escape hatches give private mutable copies
        mine = dict(v.cores())
        mine[0] = 99
        assert v.cores()[0] == 2

    def test_frozen_map_pickles_as_private_plain_dict(self):
        """Cross-process consumers (reader pools, shard pipes) receive
        their own plain dict — mutable, and detached from the cache."""
        import pickle

        v = SnapshotView(0, {0: 1, 1: 1})
        clone = pickle.loads(pickle.dumps(v.cores()))
        assert type(clone) is dict and clone == v.cores()
        clone[0] = 99  # their copy, not the shared cache
        assert v.cores()[0] == 1
        assert type(v.cores().copy()) is dict
        assert isinstance(v.cores(), FrozenCoreMap)

    def test_epoch_out_of_range(self):
        store = SnapshotStore(ParallelOrderMaintainer(triangle_plus_tail()))
        with pytest.raises(ValueError):
            store.view(7)
        with pytest.raises(ValueError):
            store.view(-1)
        with pytest.raises(ValueError):
            SnapshotStore(ParallelOrderMaintainer(triangle_plus_tail()),
                          cache_epochs=0)
