"""Tests for the kernel+leaves generator and simulator work-conservation
properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition, core_histogram
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import attach_leaves, erdos_renyi, kernel_leaves


class TestKernelLeaves:
    def test_shape(self):
        edges = kernel_leaves(200, 1500, 3000, seed=1)
        g = DynamicGraph(edges)
        cores = core_decomposition(g).core
        hist = core_histogram(cores)
        # massive low-core periphery, deep kernel
        assert hist.get(1, 0) + hist.get(2, 0) > 0.6 * g.num_vertices
        assert max(hist) >= 5

    def test_leaf_ids_offset(self):
        edges = kernel_leaves(50, 200, 100, seed=2)
        leaves = {u for e in edges for u in e if u >= 50}
        assert leaves  # leaf vertices exist above the kernel range

    def test_er_kernel_variant(self):
        edges = kernel_leaves(100, 800, 500, seed=3, kernel="er")
        g = DynamicGraph(edges)
        assert core_decomposition(g).max_core >= 4

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_leaves(50, 100, 100, kernel="mystery")

    def test_deterministic(self):
        assert kernel_leaves(50, 200, 300, seed=4) == kernel_leaves(
            50, 200, 300, seed=4
        )

    def test_attach_leaves_standalone(self):
        kernel = erdos_renyi(40, 200, seed=5)
        edges = attach_leaves(kernel, 40, 200, double_attach=0.5, seed=6)
        g = DynamicGraph(edges)
        assert g.num_vertices > 200
        # double attachment creates some degree-2 leaves
        leaf_degs = [g.degree(u) for u in g.vertices() if u >= 40]
        assert any(d >= 2 for d in leaf_degs)
        assert all(d >= 1 for d in leaf_degs)

    def test_no_dupes_or_loops(self):
        edges = kernel_leaves(60, 300, 400, seed=7)
        assert all(u != v for u, v in edges)
        canon = {(min(u, v), max(u, v)) for u, v in edges}
        assert len(canon) == len(edges)


class TestMachineWorkConservation:
    """Properties every simulated run must satisfy."""

    @given(st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_makespan_bounds(self, seed, workers):
        from repro.graph.generators import erdos_renyi as er
        from repro.parallel.batch import ParallelOrderMaintainer

        edges = er(30, 80, seed=seed % 7)
        batch = edges[::4]
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=workers)
        res = m.remove_edges(batch)
        rep = res.report
        # makespan between perfect-parallel and fully-serial bounds
        assert rep.makespan <= rep.total_work + rep.spin_time + 1e-9
        assert rep.makespan * workers >= rep.total_work - 1e-9

    def test_single_worker_no_contention(self):
        from repro.parallel.batch import ParallelOrderMaintainer

        edges = erdos_renyi(40, 120, seed=9)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=1)
        rep = m.remove_edges(edges[::4]).report
        assert rep.lock_failures == 0
        assert rep.spin_time == 0
        assert rep.makespan == pytest.approx(rep.total_work)

    def test_worker_clocks_sum_to_at_least_work(self):
        from repro.parallel.batch import ParallelOrderMaintainer

        edges = erdos_renyi(40, 120, seed=10)
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=4)
        rep = m.insert_edges(
            [e for e in erdos_renyi(40, 300, seed=11) if not m.graph.has_edge(*e)][:40]
        ).report
        assert sum(rep.worker_clocks) >= rep.total_work - 1e-9
