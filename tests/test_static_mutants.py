"""Seeded-mutant tests for the static analysis framework.

Each test plants one deliberate bug (a *mutant*) in a synthetic project
and asserts that exactly the rule designed for that bug — and no other
new-framework rule — fires.  The final gate asserts the real tree is
finding-free, which is what makes the mutants meaningful: every rule
both catches its target and stays silent on correct code.

Virtual file paths matter: the identity pass zones modules by path
fragment (``repro/core/korder`` is int-native, ``repro/graph/`` is the
translation layer, ``repro/service/`` is public surface), and the
journal pass only arms itself when a module declaring ``REC_*`` kinds
is present.
"""

from pathlib import Path

from repro.analysis.static import Project, run_analysis

SRC = Path(__file__).resolve().parents[1] / "src"

#: every rule introduced by the multi-pass framework
NEW_RULES = {
    "RL010", "RL011", "RL012", "RL013", "RL014",
    "RL015", "RL016", "RL017",
    "RL020", "RL021", "RL022",
    "RL023", "RL024", "RL025",
}


def new_rules_hit(sources):
    """Run the full analysis over a synthetic project; return the set of
    new-framework rules that fired (legacy RL00x are ignored so e.g. a
    deliberate lock-order mutant may also trip RL003)."""
    result = run_analysis(Project.from_sources(sources))
    return {f.rule for f in result.findings if f.rule in NEW_RULES}


# ----------------------------------------------------------------------
# identity-domain dataflow (RL010-RL014)
# ----------------------------------------------------------------------
class TestIdentityMutants:
    def test_rl010_external_id_into_raw_slot(self):
        src = {
            "src/repro/parallel/facade.py": (
                "from repro.graph.storage import raw_map, raw_get\n"
                "from repro.core.boundary import Boundary\n"
                "class Facade:\n"
                "    def __init__(self, ig):\n"
                "        self.b = Boundary(ig)\n"
                "        self.core = raw_map(4)\n"
                "    def core_of(self, v):\n"
                "        m = raw_map(4)\n"
                "        x = raw_get(m, v)\n"  # v is an external id
                "        return x\n"
            ),
        }
        assert new_rules_hit(src) == {"RL010"}

    def test_rl010_external_id_indexes_state_map(self):
        src = {
            "src/repro/parallel/facade.py": (
                "from repro.core.boundary import Boundary\n"
                "class Facade:\n"
                "    def __init__(self, ig):\n"
                "        self.b = Boundary(ig)\n"
                "    def core_of(self, v):\n"
                "        x = self.state.korder.core[v]\n"
                "        return x\n"
            ),
        }
        assert new_rules_hit(src) == {"RL010"}

    def test_rl011_interned_int_escapes_public_return(self):
        src = {
            "src/repro/parallel/facade.py": (
                "from repro.core.boundary import Boundary\n"
                "class Facade:\n"
                "    def __init__(self, ig):\n"
                "        self.b = Boundary(ig)\n"
                "    def vertex_id(self, v):\n"
                "        return self.b.vertex_in(v)\n"  # interned, untranslated
            ),
        }
        assert new_rules_hit(src) == {"RL011"}

    def test_rl012_double_translation(self):
        src = {
            "src/repro/service/tool.py": (
                "def resolve(b, v):\n"
                "    w = b.vertex_in(v)\n"
                "    u = b.intern(w)\n"  # w is already interned
                "    u2 = u\n"
            ),
        }
        assert new_rules_hit(src) == {"RL012"}

    def test_rl013_cross_domain_comparison(self):
        src = {
            "src/repro/parallel/facade.py": (
                "from repro.core.boundary import Boundary\n"
                "class Facade:\n"
                "    def __init__(self, ig):\n"
                "        self.b = Boundary(ig)\n"
                "    def is_same(self, v):\n"
                "        w = self.b.vertex_in(v)\n"
                "        return w == v\n"  # interned vs. external
            ),
        }
        assert new_rules_hit(src) == {"RL013"}

    def test_rl014_translation_below_the_boundary(self):
        src = {
            "src/repro/core/korder.py": (
                "def bump(state, interner, v):\n"
                "    x = interner.lookup(v)\n"  # int-native zone translates
                "    return x\n"
            ),
        }
        assert new_rules_hit(src) == {"RL014"}

    def test_rl014_interner_reference_below_the_boundary(self):
        src = {
            "src/repro/core/order_insert.py": (
                "from repro.graph.interning import VertexInterner\n"
                "def make():\n"
                "    return VertexInterner()\n"
            ),
        }
        assert new_rules_hit(src) == {"RL014"}


# ----------------------------------------------------------------------
# static lock-order graph (RL015-RL017)
# ----------------------------------------------------------------------
class TestLockOrderMutants:
    def test_rl015_inconsistent_acquisition_order(self):
        src = {
            "src/repro/parallel/mixed.py": (
                "def w1(a, b):\n"
                "    ok = yield ('try', a)\n"
                "    ok2 = yield ('try', b)\n"   # a -> b
                "    yield ('release', b)\n"
                "    yield ('release', a)\n"
                "def w2(a, b):\n"
                "    ok = yield ('try', b)\n"
                "    ok2 = yield ('try', a)\n"   # b -> a: cycle
                "    yield ('release', a)\n"
                "    yield ('release', b)\n"
            ),
        }
        assert new_rules_hit(src) == {"RL015"}

    def test_rl016_loop_accumulation_without_backoff(self):
        src = {
            "src/repro/parallel/accum.py": (
                "from repro.parallel.runtime import release_all\n"
                "def w(keys):\n"
                "    held = []\n"
                "    for k in keys:\n"
                "        while not (yield ('try', k)):\n"
                "            yield ('spin',)\n"   # keeps earlier locks
                "        held.append(k)\n"
                "    yield from release_all(held)\n"
            ),
        }
        assert new_rules_hit(src) == {"RL016"}

    def test_rl016_clean_with_full_backoff(self):
        """The _try_lock_all pattern (release everything + abort on
        failure) is the sanctioned loop and must stay silent."""
        src = {
            "src/repro/parallel/accum.py": (
                "from repro.parallel.runtime import release_all\n"
                "def try_all(keys):\n"
                "    held = []\n"
                "    for k in keys:\n"
                "        ok = yield ('try', k)\n"
                "        if not ok:\n"
                "            yield from release_all(held)\n"
                "            return False\n"
                "        held.append(k)\n"
                "    yield from release_all(held)\n"
                "    return True\n"
            ),
        }
        assert new_rules_hit(src) == set()

    def test_rl017_spin_while_holding(self):
        src = {
            "src/repro/parallel/holdwait.py": (
                "def w(a, b):\n"
                "    while not (yield ('try', a)):\n"
                "        yield ('spin',)\n"
                "    while not (yield ('try', b)):\n"  # holds a, spins on b
                "        yield ('spin',)\n"
                "    yield ('release', b)\n"
                "    yield ('release', a)\n"
            ),
        }
        assert new_rules_hit(src) == {"RL017"}

    def test_rl017_lock_pair_while_holding(self):
        src = {
            "src/repro/parallel/holdwait.py": (
                "from repro.parallel.runtime import lock_pair, release_all\n"
                "def w(a, b, c):\n"
                "    while not (yield ('try', c)):\n"
                "        yield ('spin',)\n"
                "    got = yield from lock_pair(a, b)\n"  # holds c
                "    yield from release_all([a, b, c])\n"
            ),
        }
        assert new_rules_hit(src) == {"RL017"}

    def test_interprocedural_cycle_through_yield_from(self):
        """The order graph unifies keys across helper inlining: w1 locks
        (x, y) through a helper, w2 locks (y, x) directly."""
        src = {
            "src/repro/parallel/helpers.py": (
                "def grab(p, q):\n"
                "    ok = yield ('try', p)\n"
                "    ok2 = yield ('try', q)\n"
                "def w1(x, y):\n"
                "    yield from grab(x, y)\n"
                "    yield ('release', x)\n"
                "    yield ('release', y)\n"
                "def w2(x, y):\n"
                "    ok = yield ('try', y)\n"
                "    ok2 = yield ('try', x)\n"
                "    yield ('release', x)\n"
                "    yield ('release', y)\n"
            ),
        }
        assert "RL015" in new_rules_hit(src)


# ----------------------------------------------------------------------
# journal-schema exhaustiveness (RL020-RL022)
# ----------------------------------------------------------------------
_JOURNAL_BASE = (
    "REC_A = 'a'\n"
    "REC_B = 'b'\n"
    "_KINDS = (REC_A, REC_B)\n"
    "class J:\n"
    "    def append(self, rec):\n"
    "        if rec['t'] not in _KINDS:\n"     # validation, not handling
    "            raise ValueError(rec)\n"
    "        self.records.append(rec)\n"
    "    def log_a(self, x):\n"
    "        self.append({'t': REC_A, 'x': x})\n"
)


class TestJournalSchemaMutants:
    def test_rl020_written_kind_without_reader(self):
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE
                + "    def log_b(self):\n"
                  "        self.append({'t': REC_B})\n"  # no reader arm
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL020"}

    def test_rl021_dead_dispatch_arm(self):
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace("REC_B = 'b'", "REC_B = 'b'\nREC_C = 'c'")
                + "    def log_b(self):\n"
                  "        self.append({'t': REC_B})\n"
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "            elif t == REC_B:\n"
                  "                out = None\n"
                  "            elif t == REC_C:\n"  # nothing writes 'c'
                  "                out = None\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL021"}

    def test_rl022_field_shape_drift(self):
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace("_KINDS = (REC_A, REC_B)",
                                      "_KINDS = (REC_A,)")
                .replace("REC_B = 'b'\n", "")
                + "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['epoch']\n"  # log_a stores 'x'
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL022"}

    def test_alias_tracks_record_kind_across_arms(self):
        """The pending-intent pattern: an alias bound in one arm is read
        in another; its fields belong to the *aliased* kind and must not
        be misattributed (no RL022 here)."""
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE
                + "    def log_b(self, n):\n"
                  "        self.append({'t': REC_B, 'n': n})\n"
                  "    def replay(self):\n"
                  "        pending = None\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                pending = rec\n"
                  "            elif t == REC_B:\n"
                  "                out = (pending['x'], rec['n'])\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == set()

    # -- replication record kinds: promote (WAL) and cursor (sidecar) --

    def test_rl020_promote_written_without_reader(self):
        """A failover writer appends promote records but replay never
        grew an arm for them — the generation bump would vanish."""
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace("REC_B = 'b'", "REC_B = 'promote'")
                + "    def log_promote(self, gen, replica):\n"
                  "        self.append({'t': REC_B, 'generation': gen,\n"
                  "                     'replica': replica})\n"
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL020"}

    def test_rl021_cursor_reader_without_writer(self):
        """A shipper that can load a cursor sidecar nobody saves: the
        resume path is dead code."""
        src = {
            "src/repro/service/journal.py": _JOURNAL_BASE + (
                "    def log_b(self):\n"
                "        self.append({'t': REC_B})\n"
                "    def replay(self):\n"
                "        for rec in self.records:\n"
                "            t = rec['t']\n"
                "            if t == REC_A:\n"
                "                out = rec['x']\n"
                "            elif t == REC_B:\n"
                "                out = None\n"
                "        return out\n"
            ),
            "src/repro/replication/shipper.py": (
                "REC_CURSOR = 'cursor'\n"
                "def load_cursor(path):\n"
                "    rec = _read_one(path)\n"
                "    if rec['t'] == REC_CURSOR:\n"
                "        return (rec['records'], rec['offset'])\n"
                "    raise ValueError(rec)\n"
            ),
        }
        assert new_rules_hit(src) == {"RL021"}

    def test_rl022_cursor_field_drift(self):
        """save_cursor stores ``records``/``offset``; a reader asking
        for ``position`` is reading a field that was never written."""
        src = {
            "src/repro/service/journal.py": _JOURNAL_BASE + (
                "    def log_b(self):\n"
                "        self.append({'t': REC_B})\n"
                "    def replay(self):\n"
                "        for rec in self.records:\n"
                "            t = rec['t']\n"
                "            if t == REC_A:\n"
                "                out = rec['x']\n"
                "            elif t == REC_B:\n"
                "                out = None\n"
                "        return out\n"
            ),
            "src/repro/replication/shipper.py": (
                "REC_CURSOR = 'cursor'\n"
                "def save_cursor(fh, n, off):\n"
                "    fh.write({'t': REC_CURSOR, 'records': n,\n"
                "              'offset': off})\n"
                "def load_cursor(path):\n"
                "    rec = _read_one(path)\n"
                "    if rec['t'] == REC_CURSOR:\n"
                "        return (rec['position'], rec['offset'])\n"
                "    raise ValueError(rec)\n"
            ),
        }
        assert new_rules_hit(src) == {"RL022"}

    # -- cross-shard 2PC record kinds: prepare / commit2 / abort2 ------

    def test_rl020_prepare_written_without_reader(self):
        """A 2PC participant writes prepare records but replay never
        grew an arm for them — a dangling prepare would be invisible to
        the recovery resolution pass."""
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace("REC_B = 'b'", "REC_B = 'prepare'")
                + "    def log_prepare(self, tx, kind, edge, role):\n"
                  "        self.append({'t': REC_B, 'tx': tx,\n"
                  "                     'kind': kind, 'edge': edge,\n"
                  "                     'role': role})\n"
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL020"}

    def test_rl021_abort2_arm_without_writer(self):
        """Replay dispatches on abort2 records nobody logs — the relic
        of a renamed decision record; presumed-abort would silently
        change meaning."""
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace(
                    "REC_B = 'b'", "REC_B = 'commit2'\nREC_C = 'abort2'")
                + "    def log_commit2(self, tx, epoch):\n"
                  "        self.append({'t': REC_B, 'tx': tx,\n"
                  "                     'epoch': epoch})\n"
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "            elif t == REC_B:\n"
                  "                out = rec['epoch']\n"
                  "            elif t == REC_C:\n"  # nothing writes abort2
                  "                out = None\n"
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL021"}

    def test_rl022_commit2_field_drift(self):
        """log_commit2 stores ``tx``/``epoch``; a reader pulling
        ``shard`` out of commit2 records is reading the prepare's shape
        — exactly the drift the role/foreign redesign invites."""
        src = {
            "src/repro/service/journal.py": (
                _JOURNAL_BASE.replace("REC_B = 'b'", "REC_B = 'commit2'")
                + "    def log_commit2(self, tx, epoch):\n"
                  "        self.append({'t': REC_B, 'tx': tx,\n"
                  "                     'epoch': epoch})\n"
                  "    def replay(self):\n"
                  "        for rec in self.records:\n"
                  "            t = rec['t']\n"
                  "            if t == REC_A:\n"
                  "                out = rec['x']\n"
                  "            elif t == REC_B:\n"
                  "                out = rec['shard']\n"  # prepare's field
                  "        return out\n"
            ),
        }
        assert new_rules_hit(src) == {"RL022"}

    def test_pass_skipped_without_writer_zone(self):
        """Linting tests/ alone (no REC_* declarations in the project)
        must not flag every fixture as an unhandled kind."""
        src = {
            "tests/test_thing.py": (
                "def test_bogus(j):\n"
                "    j.append({'t': 'bogus'})\n"
            ),
        }
        assert new_rules_hit(src) == set()


# ----------------------------------------------------------------------
# buffer-schema lockstep (RL023-RL025)
# ----------------------------------------------------------------------
_BUFFER_BASE = (
    "QP_SEQ = 0\n"
    "QP_EPOCH = 1\n"
    "class Pub:\n"
    "    def write(self, hdr, epoch):\n"
    "        hdr[QP_SEQ] = 1\n"
    "        hdr[QP_EPOCH] = epoch\n"
    "        hdr[QP_SEQ] = 2\n"
)


class TestBufferSchemaMutants:
    def test_rl023_stored_slot_never_loaded(self):
        """The reader forgot to decode QP_EPOCH: the publisher pays for
        bytes nobody can see."""
        src = {
            "src/repro/service/queryplane.py": (
                _BUFFER_BASE
                + "class Rdr:\n"
                  "    def read(self, hdr):\n"
                  "        s1 = hdr[QP_SEQ]\n"
                  "        return s1\n"  # QP_EPOCH never loaded
            ),
        }
        assert new_rules_hit(src) == {"RL023"}

    def test_rl024_loaded_slot_never_stored(self):
        """The reader decodes a slot no publisher writes — always-zero
        garbage that looks like a valid epoch."""
        src = {
            "src/repro/service/queryplane.py": (
                _BUFFER_BASE.replace("        hdr[QP_EPOCH] = epoch\n", "")
                + "class Rdr:\n"
                  "    def read(self, hdr):\n"
                  "        s1 = hdr[QP_SEQ]\n"
                  "        epoch = hdr[QP_EPOCH]\n"  # nothing stores it
                  "        return s1, epoch\n"
            ),
        }
        assert new_rules_hit(src) == {"RL024"}

    def test_rl025_declared_slot_never_subscripted(self):
        """A renumbering relic: the constant survives, every use is
        gone — and its index is one layout change from being reused."""
        src = {
            "src/repro/service/queryplane.py": (
                _BUFFER_BASE.replace("QP_EPOCH = 1\n",
                                     "QP_EPOCH = 1\nQP_MIN_EPOCH = 2\n")
                + "class Rdr:\n"
                  "    def read(self, hdr):\n"
                  "        s1 = hdr[QP_SEQ]\n"
                  "        return s1, hdr[QP_EPOCH]\n"
            ),
        }
        assert new_rules_hit(src) == {"RL025"}

    def test_augassign_counts_as_store_and_load(self):
        """``hdr[QP_SEQ] += 1`` both reads and writes the slot — the
        seqlock bump idiom must satisfy both directions at once."""
        src = {
            "src/repro/service/queryplane.py": (
                "QP_SEQ = 0\n"
                "class Pub:\n"
                "    def stamp(self, hdr):\n"
                "        hdr[QP_SEQ] += 1\n"
            ),
        }
        assert new_rules_hit(src) == set()

    def test_pass_skipped_without_slot_declarations(self):
        """Linting a module that merely subscripts QP_-named constants
        (e.g. a test fixture importing them) must not arm the pass."""
        src = {
            "tests/test_thing.py": (
                "from repro.service.queryplane import QP_SEQ\n"
                "def test_poke(hdr):\n"
                "    hdr[QP_SEQ] = 3\n"
            ),
        }
        assert new_rules_hit(src) == set()


# ----------------------------------------------------------------------
# the gate that makes the mutants meaningful
# ----------------------------------------------------------------------
class TestCleanTree:
    def test_src_tree_is_finding_free(self):
        result = run_analysis(Project.load([str(SRC)]))
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings)
