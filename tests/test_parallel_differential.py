"""Cross-algorithm, cross-schedule differential tests.

Every maintenance algorithm, run any way, must end with the same core
numbers as a from-scratch BZ decomposition of the final graph — core
numbers depend only on the graph, never on the processing order.
"""

import pytest

from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.baselines.matching import MatchingMaintainer
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from tests.conftest import small_graph_families, split_edges

BATCH_FACTORIES = {
    "our-p1": lambda g: ParallelOrderMaintainer(g, num_workers=1),
    "our-p4": lambda g: ParallelOrderMaintainer(g, num_workers=4),
    "our-p4-random": lambda g: ParallelOrderMaintainer(
        g, num_workers=4, schedule="random", seed=11
    ),
    "jei": lambda g: JoinEdgeSetMaintainer(g, num_workers=4),
    "mi": lambda g: MatchingMaintainer(g, num_workers=4),
}


@pytest.mark.parametrize("algo", list(BATCH_FACTORIES))
@pytest.mark.parametrize(
    "name,edges", small_graph_families(3), ids=lambda p: p if isinstance(p, str) else ""
)
def test_remove_then_insert_all_algorithms(name, edges, algo):
    """Paper protocol on every family x every batch algorithm."""
    batch = edges[len(edges) // 2 :: 3]  # spread sample
    m = BATCH_FACTORIES[algo](DynamicGraph(edges))
    m.remove_edges(batch)
    m.check()
    m.insert_edges(batch)
    m.check()


@pytest.mark.parametrize(
    "name,edges", small_graph_families(4), ids=lambda p: p if isinstance(p, str) else ""
)
def test_all_algorithms_agree(name, edges):
    """After identical batches, all five maintainers hold identical cores."""
    base, dyn = split_edges(edges)
    ms = [
        OrderMaintainer(DynamicGraph(base)),
        TraversalMaintainer(DynamicGraph(base)),
        ParallelOrderMaintainer(DynamicGraph(base), num_workers=3),
        JoinEdgeSetMaintainer(DynamicGraph(base), num_workers=3),
        MatchingMaintainer(DynamicGraph(base), num_workers=3),
    ]
    for m in ms:
        m.insert_edges(dyn)
    cores = [m.cores() for m in ms]
    assert all(c == cores[0] for c in cores)
    for m in ms:
        m.remove_edges(dyn)
    cores = [m.cores() for m in ms]
    assert all(c == cores[0] for c in cores)


@pytest.mark.parametrize("seed", range(8))
def test_many_random_interleavings(seed):
    """The random scheduler explores different interleavings per seed; all
    must produce correct cores and valid k-order state."""
    from repro.graph.generators import erdos_renyi

    edges = erdos_renyi(50, 170, seed=100 + seed)
    batch = edges[::3]
    m = ParallelOrderMaintainer(
        DynamicGraph(edges), num_workers=5, schedule="random", seed=seed
    )
    m.remove_edges(batch)
    m.check()
    m.insert_edges(batch)
    m.check()


def test_parallel_results_independent_of_worker_count():
    from repro.graph.generators import powerlaw_cluster

    edges = powerlaw_cluster(80, 3, 0.5, seed=9)
    batch = edges[::4]
    cores = []
    for p in (1, 2, 4, 8):
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=p)
        m.remove_edges(batch)
        m.insert_edges(batch)
        cores.append(m.cores())
    assert all(c == cores[0] for c in cores)


def test_same_work_claim():
    """Paper Section 4: OurI/OurR have the *same work* as their sequential
    versions.  Removal work is essentially interleaving-independent;
    insertion work varies more (different interleavings evolve different
    k-orders, hence different search sets) but stays within a small factor.
    """
    from repro.graph.generators import barabasi_albert

    edges = barabasi_albert(250, 4, seed=13)
    batch = edges[::4]
    rm_work = {}
    ins_work = {}
    for p in (1, 4, 16):
        m = ParallelOrderMaintainer(DynamicGraph(edges), num_workers=p)
        rm_work[p] = m.remove_edges(batch).report.total_work
        ins_work[p] = m.insert_edges(batch).report.total_work
    for p in (4, 16):
        assert abs(rm_work[p] - rm_work[1]) <= 0.15 * rm_work[1]
        assert ins_work[p] <= 3.0 * ins_work[1]
        assert ins_work[p] >= 0.5 * ins_work[1]
