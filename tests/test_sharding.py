"""Sharded serving: routing, the cross-shard run buffer, the foreign
(track-role) replica invariants, and the differential guarantee — a
sharded engine's stitched cores are bit-identical to one engine fed the
same trace, on every backend and shard count."""

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.graph.interning import ShardedInterner
from repro.service.engine import Engine, EngineConfig
from repro.service.requests import (
    STATUS_COMMITTED,
    STATUS_PENDING,
    STATUS_QUARANTINED,
)
from repro.service.sharding import LocalShard, ShardedEngine, shard_paths


def update_stream(seed, nv, nops):
    """Sequentially-valid insert/remove trace over integer vertices."""
    rng = random.Random(seed)
    ops = []
    edges = set()
    while len(ops) < nops:
        u, v = rng.randrange(nv), rng.randrange(nv)
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in edges:
            if rng.random() < 0.35:
                ops.append(("remove", u, v))
                edges.discard(e)
        else:
            ops.append(("insert", u, v))
            edges.add(e)
    return ops


def mono_cores(ops, init=()):
    eng = Engine(DynamicGraph(list(init)), EngineConfig(backend="sim"))
    for op, u, v in ops:
        getattr(eng, op)(u, v)
    eng.flush()
    cores = dict(eng.maintainer.cores())
    eng.close()
    return cores


class TestRouting:
    def test_intra_shard_ops_go_to_the_owner(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=4))
        # 0-4 and 4-8 are intra (0,4,8 all hash to shard 0 for ints)
        eng.insert(0, 4)
        eng.insert(4, 8)
        eng.flush()
        assert eng.shards[0].engine.graph.has_edge(0, 4)
        assert not any(
            sh.engine.graph.has_edge(0, 4) for sh in eng.shards[1:]
        )
        eng.close()

    def test_cross_shard_edge_has_one_maintainer(self):
        """Single-maintainer rule: the coordinator (owner of the
        canonical first endpoint) applies the edge; the peer only
        tracks it in its foreign set."""
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=4))
        eng.insert(0, 1)   # shard 0 coordinates, shard 1 tracks
        eng.flush()
        e = canonical_edge(0, 1)
        coord = eng.interner.shard_of(e[0])
        peer = eng.interner.shard_of(e[1])
        assert eng.shards[coord].engine.graph.has_edge(0, 1)
        assert not eng.shards[peer].engine.graph.has_edge(0, 1)
        assert e in eng.shards[peer].engine._foreign
        # both owners surface the edge through the shard interface
        assert e in {canonical_edge(u, v)
                     for u, v in eng.shards[peer].edges()}
        eng.close()

    def test_initial_graph_partition_matches_live_inserts(self):
        """Seeding the constructor with a graph must land edges exactly
        where live inserts would."""
        edges = [(0, 1), (0, 4), (2, 6), (3, 5)]
        seeded = ShardedEngine(DynamicGraph(edges),
                               EngineConfig(backend="sim", shards=4))
        live = ShardedEngine(None, EngineConfig(backend="sim", shards=4))
        for u, v in edges:
            live.insert(u, v)
        live.flush()
        for s in range(4):
            assert sorted(seeded.shards[s].engine._graph_edges(), key=repr) \
                == sorted(live.shards[s].engine._graph_edges(), key=repr)
            assert seeded.shards[s].engine._foreign \
                == live.shards[s].engine._foreign
        seeded.close()
        live.close()

    def test_duplicate_id_quarantined_globally(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        r1 = eng.insert(0, 1, id="x")
        r2 = eng.insert(2, 3, id="x")
        assert r1.status in (STATUS_PENDING, STATUS_COMMITTED)
        assert r2.status == STATUS_QUARANTINED
        eng.close()

    def test_self_loop_quarantined(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        assert eng.insert(5, 5).status == STATUS_QUARANTINED
        eng.close()

    def test_query_carries_stitched_epoch(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 2)
        eng.insert(1, 3)
        eng.flush()
        r = eng.query("degeneracy")
        assert r.status == STATUS_COMMITTED
        assert r.epoch == eng.epoch == sum(
            sh.epoch() for sh in eng.shards)
        eng.close()


class TestCrossBuffer:
    """The router's cross-shard run buffer mirrors the micro-batcher."""

    def test_same_kind_duplicate_coalesces(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        r = eng.insert(0, 1)
        assert r.status == STATUS_PENDING and r.detail == "coalesced"
        done = eng.flush()
        assert all(x.status == STATUS_COMMITTED for x in done)
        eng.close()

    def test_opposite_kind_annihilates(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        r = eng.remove(0, 1)
        assert r.status == STATUS_COMMITTED and r.detail == "cancelled"
        eng.flush()
        assert not eng.shards[0].engine.graph.has_edge(0, 1)
        assert canonical_edge(0, 1) not in eng.shards[1].engine._foreign
        eng.close()

    def test_kind_conflict_cuts_the_pending_group(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        eng.insert(2, 3)
        eng.remove(0, 1)       # annihilates, group still pending
        eng.insert(0, 1)       # re-queues
        eng.flush()
        view = eng.cores()
        assert view == mono_cores(
            [("insert", 0, 1), ("insert", 2, 3)])
        eng.close()

    def test_validation_failure_quarantines_riders_on_both_shards(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.remove(0, 1)       # edge was never inserted
        done = eng.flush()
        assert any(r.status == STATUS_QUARANTINED for r in done)
        # neither shard holds a dangling prepared tx
        assert all(not sh.engine._prepared for sh in eng.shards)
        eng.close()

    def test_group_cap_cuts_by_size(self):
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=2, cross_group=2))
        eng.insert(0, 1)
        eng.insert(2, 3)       # second cross op hits the cap
        assert sum(len(r) for r in eng._xriders.values()) == 0
        eng.close()


class TestForeignInvariants:
    def test_both_owners_vote_identically(self):
        """validate_cross must agree on both sides of a cross edge:
        the coordinator sees it in its graph, the peer in its foreign
        set."""
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        eng.flush()
        coord = eng.interner.shard_of(canonical_edge(0, 1)[0])
        peer = 1 - coord
        for kind in ("+", "-"):
            assert (eng.shards[coord].engine.validate_cross(kind, (0, 1))
                    == eng.shards[peer].engine.validate_cross(kind, (0, 1)))
        eng.close()

    def test_track_commit_does_not_bump_peer_epoch(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        eng.flush()
        coord = eng.interner.shard_of(canonical_edge(0, 1)[0])
        peer = 1 - coord
        assert eng.shards[coord].epoch() == 1
        assert eng.shards[peer].epoch() == 0
        eng.close()

    def test_remove_clears_the_foreign_entry(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        eng.flush()
        eng.remove(0, 1)
        eng.flush()
        assert all(canonical_edge(0, 1) not in sh.engine._foreign
                   for sh in eng.shards)
        assert all(not sh.engine.graph.has_edge(0, 1) for sh in eng.shards)
        eng.close()


class TestDifferential:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_sim_matches_monolith(self, shards):
        init = [(i, i + 1) for i in range(0, 30, 2)]
        ops = update_stream(7, 48, 220)
        oracle = mono_cores(ops, init)
        eng = ShardedEngine(DynamicGraph(list(init)),
                            EngineConfig(backend="sim", shards=shards))
        for op, u, v in ops:
            getattr(eng, op)(u, v)
        eng.flush()
        assert eng.cores() == oracle
        eng.check()
        eng.close()

    def test_small_group_cap_matches_monolith(self):
        ops = update_stream(13, 32, 150)
        oracle = mono_cores(ops)
        eng = ShardedEngine(
            None, EngineConfig(backend="sim", shards=3, cross_group=2))
        for op, u, v in ops:
            getattr(eng, op)(u, v)
        eng.flush()
        assert eng.cores() == oracle
        eng.close()

    def test_process_backend_matches_monolith(self):
        ops = update_stream(11, 40, 160)
        oracle = mono_cores(ops)
        eng = ShardedEngine(None,
                            EngineConfig(backend="process", shards=2))
        for op, u, v in ops:
            getattr(eng, op)(u, v)
        eng.flush()
        assert eng.cores() == oracle
        eng.close()

    def test_string_vertices_route_stably(self):
        names = [f"v{i}" for i in range(20)]
        ops = []
        edges = set()
        rng = random.Random(5)
        for _ in range(80):
            u, v = rng.choice(names), rng.choice(names)
            if u == v:
                continue
            e = canonical_edge(u, v)
            if e not in edges:
                ops.append(("insert", u, v))
                edges.add(e)
        oracle = mono_cores(ops)
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=3))
        for op, u, v in ops:
            getattr(eng, op)(u, v)
        eng.flush()
        assert eng.cores() == oracle
        eng.close()


class TestSurface:
    def test_shard_paths(self):
        assert shard_paths(None, 3) == [None, None, None]
        assert shard_paths("/tmp/j", 2) == ["/tmp/j.shard0", "/tmp/j.shard1"]

    def test_interner_stability(self):
        a = ShardedInterner(4)
        b = ShardedInterner(4)
        xs = [0, 1, "alpha", "beta", (1, 2)]
        for x in xs:
            a.intern(x)
        for x in reversed(xs):
            b.intern(x)
        # shard placement is content-hashed: arrival order irrelevant
        assert [a.shard_of(x) for x in xs] == [b.shard_of(x) for x in xs]

    def test_metrics_shape(self):
        eng = ShardedEngine(None, EngineConfig(backend="sim", shards=2))
        eng.insert(0, 1)
        eng.flush()
        m = eng.metrics()
        assert "router" in m and len(m["shards"]) == 2
        eng.close()

    def test_local_shard_present_vertices_include_foreign_endpoints(self):
        cfg = EngineConfig(backend="sim")
        sh = LocalShard(1, Engine(DynamicGraph(), cfg,
                                  foreign=[(0, 1)]))
        assert set(sh.present_vertices()) == {0, 1}
        sh.close()

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedEngine(None, EngineConfig(backend="sim", shards=0))
