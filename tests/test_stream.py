"""Tests for the mixed-stream batch driver."""

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.parallel.stream import StreamProcessor


class TestBuffering:
    def test_homogeneous_run_buffers(self):
        sp = StreamProcessor(DynamicGraph([(0, 1)]), num_workers=2)
        sp.insert(1, 2)
        sp.insert(2, 3)
        assert sp.pending() == 2
        reports = sp.flush()
        assert len(reports) == 1
        assert sp.graph.has_edge(2, 3)

    def test_kind_switch_flushes(self):
        sp = StreamProcessor(DynamicGraph([(0, 1)]), num_workers=2)
        sp.insert(1, 2)
        sp.remove(0, 1)  # different kind on a different edge -> flush inserts
        assert sp.graph.has_edge(1, 2)
        assert sp.pending() == 1
        sp.flush()
        assert not sp.graph.has_edge(0, 1)

    def test_opposite_op_cancels(self):
        sp = StreamProcessor(DynamicGraph([(0, 1)]), num_workers=2)
        sp.insert(1, 2)
        sp.remove(2, 1)  # cancels the queued insert
        assert sp.pending() == 0
        sp.flush()
        assert not sp.graph.has_edge(1, 2)

    def test_duplicate_same_kind_coalesces(self):
        sp = StreamProcessor(DynamicGraph([(0, 1)]), num_workers=2)
        sp.insert(1, 2)
        sp.insert(2, 1)
        assert sp.pending() == 1

    def test_auto_flush_at_max_batch(self):
        sp = StreamProcessor(DynamicGraph(), num_workers=2, max_batch=3)
        sp.insert(0, 1)
        sp.insert(1, 2)
        sp.insert(2, 3)
        assert sp.pending() == 0  # hit the threshold -> executed
        assert sp.graph.num_edges == 3

    def test_validation(self):
        sp = StreamProcessor(DynamicGraph([(0, 1)]), num_workers=2)
        with pytest.raises(ValueError):
            sp.insert(0, 1)
        with pytest.raises(KeyError):
            sp.remove(5, 6)
        with pytest.raises(ValueError):
            sp.insert(3, 3)
        with pytest.raises(ValueError):
            StreamProcessor(DynamicGraph(), max_batch=0)

    def test_flush_returns_and_clears_reports(self):
        sp = StreamProcessor(DynamicGraph(), num_workers=2)
        sp.insert(0, 1)
        reports = sp.flush()
        assert len(reports) == 1
        assert sp.flush() == []


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_mixed_stream_matches_bz(self, seed):
        rng = random.Random(seed)
        base = erdos_renyi(50, 120, seed=seed)
        sp = StreamProcessor(DynamicGraph(base), num_workers=4, max_batch=17)
        present = set(base)
        universe = [(u, v) for u in range(50) for v in range(u + 1, 50)]
        for _ in range(300):
            if rng.random() < 0.5:
                absent = [e for e in universe if e not in present]
                if not absent:
                    continue
                e = absent[rng.randrange(len(absent))]
                # skip ops that would conflict with a pending opposite run
                try:
                    sp.insert(*e)
                    present.add(e)
                except (ValueError, KeyError):
                    pass
            else:
                if not present:
                    continue
                e = rng.choice(sorted(present))
                try:
                    sp.remove(*e)
                    present.discard(e)
                except (ValueError, KeyError):
                    pass
        sp.check()
        assert {e for e in sp.graph.edges()} == present

    def test_core_queries_after_flush(self):
        sp = StreamProcessor(DynamicGraph([(0, 1), (1, 2)]), num_workers=2)
        sp.insert(0, 2)
        sp.flush()
        assert sp.core(0) == 2
        assert max(sp.cores().values()) == 2
