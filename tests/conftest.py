"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.decomposition import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    lattice,
    powerlaw_cluster,
    rmat,
)


def assert_cores_match_bz(maintainer) -> None:
    """Every maintainer's cores must equal a fresh BZ decomposition."""
    fresh = core_decomposition(maintainer.graph).core
    got = maintainer.cores()
    for u in maintainer.graph.vertices():
        assert got[u] == fresh[u], f"core[{u!r}]={got[u]} != BZ {fresh[u]}"


def small_graph_families(seed: int = 0):
    """A spread of small graphs covering the structural regimes that the
    evaluation cares about (uniform cores, skewed cores, bounded cores)."""
    return [
        ("er", erdos_renyi(40, 100, seed=seed)),
        ("er-dense", erdos_renyi(25, 140, seed=seed + 1)),
        ("ba", barabasi_albert(50, 3, seed=seed + 2)),
        ("rmat", rmat(6, 3, seed=seed + 3)),
        ("plc", powerlaw_cluster(50, 3, 0.5, seed=seed + 4)),
        ("lattice", lattice(7, 7, 0.2, seed=seed + 5)),
    ]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def triangle_graph():
    return DynamicGraph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_triangles_bridge():
    """Two triangles joined by a bridge: cores 2 everywhere except none."""
    return DynamicGraph(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def er_graph():
    return DynamicGraph(erdos_renyi(40, 100, seed=3))


def split_edges(edges, frac=3):
    """Split an edge list into (base, dynamic-tail)."""
    k = max(1, len(edges) // frac)
    return edges[:-k], edges[-k:]


# ----------------------------------------------------------------------
# per-test timeout: pytest-timeout when installed, SIGALRM fallback here
# ----------------------------------------------------------------------
# The chaos suite (fault injection, crash recovery, stateful machines)
# can hang rather than fail when a protocol bug deadlocks a retry loop,
# so every test runs under the `timeout` ini limit (pyproject: 120s).
# Environments without pytest-timeout — like the hermetic CI container —
# get the same contract from a SIGALRM timer around the call phase.
import importlib.util
import signal
import threading

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        # own the ini key the real plugin would register, so the
        # pyproject `timeout = 120` line is valid either way
        parser.addini(
            "timeout",
            "per-test timeout in seconds (conftest SIGALRM fallback)",
            default="0",
        )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            limit = float(marker.args[0])
        else:
            try:
                limit = float(item.config.getini("timeout") or 0)
            except (TypeError, ValueError):
                limit = 0.0
        if limit <= 0 or threading.current_thread() is not threading.main_thread():
            yield
            return

        def _expired(signum, frame):
            pytest.fail(
                f"test exceeded the {limit:.0f}s timeout "
                f"(conftest SIGALRM fallback)",
                pytrace=False,
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
