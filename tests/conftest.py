"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.decomposition import core_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    lattice,
    powerlaw_cluster,
    rmat,
)


def assert_cores_match_bz(maintainer) -> None:
    """Every maintainer's cores must equal a fresh BZ decomposition."""
    fresh = core_decomposition(maintainer.graph).core
    got = maintainer.cores()
    for u in maintainer.graph.vertices():
        assert got[u] == fresh[u], f"core[{u!r}]={got[u]} != BZ {fresh[u]}"


def small_graph_families(seed: int = 0):
    """A spread of small graphs covering the structural regimes that the
    evaluation cares about (uniform cores, skewed cores, bounded cores)."""
    return [
        ("er", erdos_renyi(40, 100, seed=seed)),
        ("er-dense", erdos_renyi(25, 140, seed=seed + 1)),
        ("ba", barabasi_albert(50, 3, seed=seed + 2)),
        ("rmat", rmat(6, 3, seed=seed + 3)),
        ("plc", powerlaw_cluster(50, 3, 0.5, seed=seed + 4)),
        ("lattice", lattice(7, 7, 0.2, seed=seed + 5)),
    ]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def triangle_graph():
    return DynamicGraph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_triangles_bridge():
    """Two triangles joined by a bridge: cores 2 everywhere except none."""
    return DynamicGraph(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def er_graph():
    return DynamicGraph(erdos_renyi(40, 100, seed=3))


def split_edges(edges, frac=3):
    """Split an edge list into (base, dynamic-tail)."""
    k = max(1, len(edges) // frac)
    return edges[:-k], edges[-k:]
