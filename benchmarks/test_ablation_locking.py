"""Ablation — lock only V+ vs lock-all-neighbors.

The paper's headline synchronization design: only vertices entering V+
are locked; their (many) neighbors are not.  The ablation charges an
acquire+release pair for every neighbor touched during scans — a lower
bound on the alternative's cost, since added contention is not even
modeled.
"""

from repro.bench.workloads import dataset_workload
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.costs import CostModel
from repro.bench.reporting import render_table

from conftest import save_result


def run_variant(edges, batch, workers, neighbor_locking):
    costs = CostModel(neighbor_locking=neighbor_locking)
    m = ParallelOrderMaintainer(
        DynamicGraph(edges), num_workers=workers, costs=costs
    )
    t_rm = m.remove_edges(batch).makespan
    t_in = m.insert_edges(batch).makespan
    m.check()
    return t_in, t_rm


def test_ablation_locking(benchmark, scale, results_dir):
    def experiment():
        rows = []
        workers = max(scale["workers"])
        for ds in scale["scal_datasets"]:
            edges, batch = dataset_workload(ds, scale["batch"] // 2, seed=0)
            vi, vr = run_variant(edges, batch, workers, False)
            ni, nr = run_variant(edges, batch, workers, True)
            rows.append(
                {
                    "dataset": ds,
                    "OurI (V+ only)": round(vi),
                    "OurI (lock nbrs)": round(ni),
                    "penalty I": f"{ni / vi:.2f}x",
                    "OurR (V+ only)": round(vr),
                    "OurR (lock nbrs)": round(nr),
                    "penalty R": f"{nr / vr:.2f}x",
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = "Ablation — locking granularity (lower bound on the penalty)\n\n"
    text += render_table(rows)
    save_result(results_dir, "ablation_locking", text)
    for r in rows:
        assert float(r["penalty I"].rstrip("x")) > 1.0
        assert float(r["penalty R"].rstrip("x")) > 1.0
