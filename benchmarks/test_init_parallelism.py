"""Extension benchmarks — initialization parallelism and the GIL reality.

1. ParK-style level-synchronous decomposition: how much parallel width the
   *initialization* step exposes per peel round (paper Section 2's related
   work; the maintenance algorithms assume a decomposed starting state).
2. The thread backend's wall-clock: same protocol, real threads — the GIL
   keeps it flat or worse with more workers, which is precisely why this
   reproduction measures parallelism on the simulated machine (DESIGN.md's
   substitution table, verified rather than asserted).
"""

import statistics
import time

from repro.core.decomposition import park_decomposition
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.parallel.threads import ThreadedOrderMaintainer
from repro.bench.reporting import render_table

from conftest import save_result


def test_park_parallel_width(benchmark, scale, results_dir):
    def experiment():
        rows = []
        for name in scale["scal_datasets"]:
            g = load_dataset(name)
            _core, rounds = park_decomposition(g)
            widths = [len(r) for r in rounds]
            rows.append(
                {
                    "dataset": name,
                    "n": g.num_vertices,
                    "rounds": len(rounds),
                    "mean width": round(statistics.mean(widths), 1),
                    "max width": max(widths),
                    "serial frac %": round(
                        100 * sum(1 for w in widths if w == 1) / len(rounds), 1
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = (
        "Extension — ParK level-synchronous peel: parallel width per round\n\n"
        + render_table(rows)
    )
    save_result(results_dir, "extension_park_width", text)
    for r in rows:
        assert r["max width"] > 1  # some parallelism always exists


def test_gil_reality_check(benchmark, results_dir):
    """Real threads, real wall-clock: no speedup under the GIL (the
    reproduction gate this project's simulator exists to work around)."""

    def experiment():
        edges = erdos_renyi(400, 1600, seed=5)
        batch = edges[::4]
        rows = []
        for workers in (1, 4):
            times = []
            for _ in range(3):
                m = ThreadedOrderMaintainer(
                    DynamicGraph(edges), num_workers=workers
                )
                t0 = time.perf_counter()
                m.remove_edges(batch)
                m.insert_edges(batch)
                times.append(time.perf_counter() - t0)
                m.check()
            rows.append(
                {"workers": workers, "wall_s": round(min(times), 4)}
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = rows[0]["wall_s"] / rows[-1]["wall_s"]
    text = (
        "Extension — GIL reality check (real threads, wall clock)\n\n"
        + render_table(rows)
        + f"\n\n4-thread 'speedup': {speedup:.2f}x (the GIL at work; "
        "correctness still holds, which is what this backend validates)"
    )
    save_result(results_dir, "extension_gil_check", text)
    # we only assert it does not magically speed up linearly
    assert speedup < 3.0
