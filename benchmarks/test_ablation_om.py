"""Ablation — OM group capacity vs relabel frequency.

The OM structure's amortized O(1) insert rests on group splits +
occasional top-list rebalances; capacity controls the trade-off.  We
hammer head-insertions (the worst case: every maintenance promotion
inserts at a segment head) and count relabel events per insert.
"""

from repro.om.list_labels import OMItem, OMList
from repro.bench.reporting import render_table

from conftest import save_result

N_INSERTS = 4000


def hammer(capacity: int):
    lst = OMList(capacity=capacity)
    anchor = OMItem("anchor")
    lst.insert_tail(anchor)
    for i in range(N_INSERTS):
        lst.insert_after(anchor, OMItem(i))
    lst.check_invariants()
    return lst


def test_ablation_om_capacity(benchmark, scale, results_dir):
    def experiment():
        rows = []
        for capacity in (8, 16, 32, 64, 128):
            lst = hammer(capacity)
            rows.append(
                {
                    "capacity": capacity,
                    "splits": lst.n_splits,
                    "rebalances": lst.n_rebalances,
                    "relabels/insert": round(
                        (lst.n_splits + lst.n_rebalances) / N_INSERTS, 4
                    ),
                    "version": lst.version,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = (
        f"Ablation — OM group capacity ({N_INSERTS} same-spot inserts)\n\n"
        + render_table(rows)
    )
    save_result(results_dir, "ablation_om", text)
    # amortized O(1): relabels per insert stay < 1 at every capacity, and
    # larger groups mean fewer splits
    for r in rows:
        assert r["relabels/insert"] < 1.0
    assert rows[-1]["splits"] <= rows[0]["splits"]


def test_om_insert_throughput(benchmark):
    """Wall-clock microbenchmark: amortized insert cost."""

    def run():
        hammer(64)

    benchmark(run)
