"""Section 3's motivating claim — |V+|/|V*| search efficiency.

"Clearly, we have V* ⊆ V+ and an efficient core maintenance algorithm
should have a small ratio of |V+|/|V*|.  The Order insertion algorithm
has a significantly smaller such ratio compared with the Traversal
insertion algorithm."  We measure both algorithms' searched-vs-changed
set sizes over identical insertion workloads.
"""

from repro.bench.workloads import dataset_workload
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.bench.reporting import render_table

from conftest import save_result


def measure(cls, edges, batch):
    m = cls(DynamicGraph(edges))
    m.remove_edges(batch)
    v_plus = v_star = 0
    for s in m.insert_edges(batch):
        v_plus += len(s.v_plus)
        v_star += len(s.v_star)
    m.check()
    # +1 per edge: count the root itself so empty-V* edges don't blow up
    n = len(batch)
    return (v_plus + n) / (v_star + n), v_plus, v_star


def test_ratio_vplus_vstar(benchmark, scale, results_dir):
    def experiment():
        rows = []
        for ds in scale["scal_datasets"]:
            edges, batch = dataset_workload(ds, scale["batch"] // 2, seed=0)
            r_order, p_o, s_o = measure(OrderMaintainer, edges, batch)
            r_trav, p_t, s_t = measure(TraversalMaintainer, edges, batch)
            rows.append(
                {
                    "dataset": ds,
                    "Order |V+|": p_o,
                    "Order |V*|": s_o,
                    "Order ratio": round(r_order, 2),
                    "Traversal |V+|": p_t,
                    "Traversal |V*|": s_t,
                    "Traversal ratio": round(r_trav, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = (
        "Section 3 claim — search efficiency |V+|/|V*| "
        "(smoothed by +1 per edge), insertion workload\n\n"
        + render_table(rows)
    )
    save_result(results_dir, "ratio_vplus_vstar", text)
    for r in rows:
        # identical workloads find identical candidate sets...
        assert r["Order |V*|"] == r["Traversal |V*|"]
        # ...but Order searches far less
        assert r["Order ratio"] <= r["Traversal ratio"]
