"""Figure 7 — stability over disjoint edge batches (16 workers).

Shape to reproduce: OurI/OurR (and JER) are well-bounded across different
batches, while JEI fluctuates much more — the Traversal algorithm's
|V+|/|V*| ratio is unstable between edges, the Order algorithm's is not.
"""

from repro.bench.harness import fig7_stability
from repro.bench.reporting import render_series

from conftest import save_result


def test_fig7(benchmark, scale, results_dir):
    out = benchmark.pedantic(
        fig7_stability,
        args=(scale["scal_datasets"],),
        kwargs={
            "groups": scale["stability_groups"],
            "batch_size": scale["stability_batch"],
            "workers": max(scale["workers"]),
        },
        rounds=1,
        iterations=1,
    )
    sections = [
        "Figure 7 — per-batch running time across "
        f"{scale['stability_groups']} disjoint groups"
    ]
    spreads = {}
    for ds, algos in out.items():
        series = {}
        for algo, cell in algos.items():
            series[f"{algo}I"] = dict(enumerate(cell["insert_times"]))
            series[f"{algo}R"] = dict(enumerate(cell["remove_times"]))
            spreads[(ds, algo)] = (
                cell["insert_rel_spread"],
                cell["remove_rel_spread"],
            )
        sections.append(f"\n--- {ds} (columns = batch #) ---")
        sections.append(render_series(series, title="algo \\ run"))
        for algo, cell in algos.items():
            sections.append(
                f"{algo}: insert spread {cell['insert_rel_spread']:.2f}, "
                f"remove spread {cell['remove_rel_spread']:.2f} "
                f"(max-min over mean)"
            )
    save_result(results_dir, "fig7_stability", "\n".join(sections))

    # sanity: all spreads finite and non-negative; the qualitative claim
    # (JEI fluctuates more than OurI) is recorded in the rendering and
    # discussed in EXPERIMENTS.md — at reproduction scale the joint-flood
    # JEI can look artificially stable on homogeneous graphs, so we do
    # not hard-assert the ordering here.
    for (_ds, _algo), (si, sr) in spreads.items():
        assert si >= 0 and sr >= 0
