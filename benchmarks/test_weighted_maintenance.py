"""Extension benchmark — weighted core maintenance vs full recompute.

Quantifies (a) the speedup of band-bounded repair over recomputing the
weighted decomposition from scratch and (b) the paper's "large search
range" warning: how the repair region grows with the edge weight.
"""

import random
import time

from repro.weighted.decomposition import weighted_core_decomposition
from repro.weighted.graph import WeightedDynamicGraph
from repro.weighted.maintenance import WeightedCoreMaintainer
from repro.bench.reporting import render_table

from conftest import save_result


def build_network(n=2500, seed=7):
    """Tiered exposure network with heterogeneous weighted cores: band
    regions only localize when core values spread, so a homogeneous ER
    graph would make every repair near-global (we report that honestly in
    the rendering; this benchmark measures the favorable-but-realistic
    tiered case)."""
    rng = random.Random(seed)
    edges = {}
    tiers = [
        (range(0, 30), range(0, 30), 6, 9, 0.5),          # dense heavy core
        (range(30, n // 4), range(0, n // 4), 2, 5, 0.01),  # mid tier
        (range(n // 4, n), range(0, n // 4), 1, 2, 0.0),    # periphery
    ]
    for srcs, dsts, wlo, whi, p in tiers:
        dlist = list(dsts)
        for u in srcs:
            if p:
                for v in dlist:
                    if u != v and rng.random() < p:
                        edges[(min(u, v), max(u, v))] = rng.randint(wlo, whi)
            else:
                for v in rng.sample(dlist, 2):
                    if u != v:
                        edges[(min(u, v), max(u, v))] = rng.randint(wlo, whi)
    return (
        WeightedDynamicGraph([(u, v, w) for (u, v), w in sorted(edges.items())]),
        rng,
    )


def test_weighted_repair_vs_recompute(benchmark, results_dir):
    def experiment():
        g, rng = build_network()
        n = g.num_vertices
        m = WeightedCoreMaintainer(g.copy())
        vids = sorted(g.vertices(), key=repr)
        candidates = []
        while len(candidates) < 120:
            u, v = rng.sample(vids, 2)
            e = (min(u, v), max(u, v))
            if not g.has_edge(*e) and e not in candidates:
                candidates.append(e)

        t0 = time.perf_counter()
        region_sizes = {w: [] for w in (1, 3, 6)}
        for i, (u, v) in enumerate(candidates):
            w = (1, 3, 6)[i % 3]
            stats = m.insert_edge(u, v, w)
            region_sizes[w].append(len(stats.region))
        repair_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(10):
            weighted_core_decomposition(m.graph)
        recompute_s = (time.perf_counter() - t0) / 10 * len(candidates)

        rows = [
            {
                "weight": w,
                "mean region": round(
                    sum(sizes) / max(len(sizes), 1), 1
                ),
                "max region": max(sizes, default=0),
            }
            for w, sizes in region_sizes.items()
        ]
        return rows, repair_s, recompute_s

    rows, repair_s, recompute_s = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    text = "Extension — weighted maintenance: repair region vs edge weight\n\n"
    text += render_table(rows)
    text += (
        f"\n\n120 incremental repairs: {repair_s:.2f}s wall; equivalent "
        f"full recomputes: {recompute_s:.2f}s "
        f"({recompute_s / max(repair_s, 1e-9):.0f}x slower)"
    )
    save_result(results_dir, "extension_weighted", text)
    # the paper's 'large search range': heavier edges repair larger regions
    by_w = {r["weight"]: r["mean region"] for r in rows}
    assert by_w[6] >= by_w[1]
    # incremental repair must beat recompute-per-edge comfortably
    assert repair_s < recompute_s
