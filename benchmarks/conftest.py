"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — 5 representative datasets, small batches; the
  whole suite finishes in a few minutes.
* ``full``  — all 16 dataset stand-ins at the sizes recorded in
  EXPERIMENTS.md (tens of minutes).

Every experiment writes its paper-style rendering to
``benchmarks/results/<name>.txt`` (and the pytest-benchmark table reports
wall time of the harness run itself).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SCALES = {
    "quick": {
        "datasets": ["livej", "roadNet-CA", "ER", "BA", "RMAT"],
        "fig4_datasets": ["roadNet-CA", "ER", "BA", "RMAT"],
        "scal_datasets": ["roadNet-CA", "BA"],
        "batch": 300,
        "workers": (1, 4, 16),
        "batch_sizes": (100, 200, 400),
        "stability_groups": 4,
        "stability_batch": 150,
    },
    "full": {
        "datasets": None,  # all 16
        "fig4_datasets": None,
        "scal_datasets": ["livej", "baidu", "dbpedia", "roadNet-CA"],
        "batch": 1000,
        "workers": (1, 2, 4, 8, 16),
        "batch_sizes": (250, 500, 1000, 2500),
        "stability_groups": 10,
        "stability_batch": 400,
    },
}


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {list(SCALES)}")
    cfg = dict(SCALES[name])
    cfg["name"] = name
    from repro.graph.datasets import DATASETS

    for key in ("datasets", "fig4_datasets"):
        if cfg[key] is None:
            cfg[key] = list(DATASETS)
    return cfg


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
