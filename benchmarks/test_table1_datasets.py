"""Table 1 — tested graphs: n, m, AvgDeg, Max k (stand-in vs paper)."""

from repro.bench.harness import table1_datasets
from repro.bench.reporting import render_table

from conftest import save_result


def test_table1(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        table1_datasets, args=(scale["datasets"],), rounds=1, iterations=1
    )
    text = "Table 1 — dataset stand-ins vs the paper's originals\n\n"
    text += render_table(
        rows,
        columns=[
            "name",
            "kind",
            "n",
            "m",
            "avg_deg",
            "max_k",
            "paper_n",
            "paper_m",
            "paper_avg_deg",
            "paper_max_k",
        ],
    )
    save_result(results_dir, "table1_datasets", text)
    # shape assertions the stand-ins must honor
    by_name = {r["name"]: r for r in rows}
    if "roadNet-CA" in by_name:
        assert by_name["roadNet-CA"]["max_k"] == 3  # paper: exactly 3
    if "BA" in by_name:
        assert by_name["BA"]["max_k"] >= 2
    for r in rows:
        assert r["m"] > 0 and r["n"] > 0
