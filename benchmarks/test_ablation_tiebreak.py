"""Ablation — BZ tie-break strategy (paper Section 3.1).

The k-order produced by BZ depends on how equal-degree vertices are
ordered; the paper reports "small degree first" consistently best for the
subsequent maintenance work.  We measure total OurI insertion work (1
worker == OI) after initializing with each strategy.
"""

from repro.bench.workloads import dataset_workload
from repro.core.decomposition import STRATEGIES
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from repro.bench.reporting import render_table

from conftest import save_result


def test_ablation_tiebreak(benchmark, scale, results_dir):
    def experiment():
        rows = []
        for ds in scale["scal_datasets"]:
            edges, batch = dataset_workload(ds, scale["batch"] // 2, seed=0)
            row = {"dataset": ds}
            for strategy in STRATEGIES:
                m = ParallelOrderMaintainer(
                    DynamicGraph(edges), num_workers=1, strategy=strategy
                )
                m.remove_edges(batch)
                row[strategy] = round(m.insert_edges(batch).makespan)
                m.check()
            rows.append(row)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = (
        "Ablation — BZ tie-break strategy vs subsequent insertion work "
        "(1 worker)\n\n" + render_table(rows)
    )
    save_result(results_dir, "ablation_tiebreak", text)
    # small-degree-first should not be the *worst* strategy anywhere
    for r in rows:
        vals = {s: r[s] for s in STRATEGIES}
        assert vals["small-degree-first"] <= max(vals.values())
