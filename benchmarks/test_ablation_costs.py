"""Ablation — cost-model robustness.

The simulated work units replace the paper's wall-clock milliseconds; the
*conclusions* (who wins at 16 workers) must not depend on the exact cost
constants.  We re-run the OurI-vs-JEI comparison under perturbed models.
"""

from repro.bench.workloads import dataset_workload
from repro.baselines.join_edge_set import JoinEdgeSetMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.parallel.batch import ParallelOrderMaintainer
from repro.parallel.costs import CostModel
from repro.bench.reporting import render_table

from conftest import save_result

VARIANTS = {
    "default": CostModel(),
    "pricey-locks": CostModel(lock_acquire=8.0, lock_release=4.0, cas_fail=4.0),
    "pricey-scans": CostModel(adj_scan=4.0),
    "pricey-om": CostModel(om_move=20.0, om_relabel=100.0),
}


def test_ablation_costs(benchmark, scale, results_dir):
    def experiment():
        rows = []
        workers = max(scale["workers"])
        for ds in scale["scal_datasets"]:
            edges, batch = dataset_workload(ds, scale["batch"] // 2, seed=0)
            for name, costs in VARIANTS.items():
                m = ParallelOrderMaintainer(
                    DynamicGraph(edges), num_workers=workers, costs=costs
                )
                m.remove_edges(batch)
                our = m.insert_edges(batch).makespan
                je = JoinEdgeSetMaintainer(
                    DynamicGraph(edges), num_workers=workers, costs=costs
                )
                je.remove_edges(batch)
                jei = je.insert_edges(batch).makespan
                rows.append(
                    {
                        "dataset": ds,
                        "cost model": name,
                        "OurI": round(our),
                        "JEI": round(jei),
                        "OurI wins": jei > our,
                    }
                )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = "Ablation — conclusion robustness to the cost model\n\n"
    text += render_table(rows)
    save_result(results_dir, "ablation_costs", text)
    assert all(r["OurI wins"] for r in rows)
