"""Figure 6 — scalability: running-time ratio as the batch grows (16 workers).

Shape to reproduce: time grows with batch size for everyone; OurI/OurR
tend to show *larger* ratios than JEI/JER (the join-edge-set preprocessing
amortizes better over big batches), yet Our stays faster in absolute time.
"""

from repro.bench.harness import fig6_scalability
from repro.bench.reporting import render_series

from conftest import save_result


def test_fig6(benchmark, scale, results_dir):
    out = benchmark.pedantic(
        fig6_scalability,
        args=(scale["scal_datasets"],),
        kwargs={
            "batch_sizes": scale["batch_sizes"],
            "workers": max(scale["workers"]),
        },
        rounds=1,
        iterations=1,
    )
    sections = [
        "Figure 6 — time ratio vs batch size "
        f"(relative to batch={scale['batch_sizes'][0]}, "
        f"{max(scale['workers'])} workers)"
    ]
    for ds, algos in out.items():
        for phase in ("insert", "remove"):
            series = {
                f"{algo}{'I' if phase == 'insert' else 'R'}": {
                    b: cell[f"{phase}_ratio"] for b, cell in per_b.items()
                }
                for algo, per_b in algos.items()
            }
            sections.append(f"\n--- {ds} / {phase} (ratios) ---")
            sections.append(render_series(series, title="algo \\ batch", value_fmt="{:.2f}"))
            abs_series = {
                f"{algo}{'I' if phase == 'insert' else 'R'}": {
                    b: cell[phase] for b, cell in per_b.items()
                }
                for algo, per_b in algos.items()
            }
            sections.append(f"--- {ds} / {phase} (absolute) ---")
            sections.append(render_series(abs_series, title="algo \\ batch"))
    save_result(results_dir, "fig6_scalability", "\n".join(sections))

    b_lo, b_hi = scale["batch_sizes"][0], scale["batch_sizes"][-1]
    abs_wins = 0
    for ds, algos in out.items():
        our = algos["Our"]
        # Our's time grows with batch size (no batch preprocessing)...
        assert our[b_hi]["insert_ratio"] > our[b_lo]["insert_ratio"]
        # ...and grows *faster* than JEI's (the paper's Figure 6 claim:
        # "OurI and OurR always have larger time ratios"; JEI's joint
        # floods amortize, so its ratio stays near flat)
        assert our[b_hi]["insert_ratio"] >= algos["JE"][b_hi]["insert_ratio"] * 0.9
        if our[b_hi]["insert"] < algos["JE"][b_hi]["insert"]:
            abs_wins += 1
    # Our stays faster in absolute terms on at least half the graphs even
    # at the largest batch (paper Figure 6's observation, which also
    # reports one 0.9x case)
    assert abs_wins * 2 >= len(out)
