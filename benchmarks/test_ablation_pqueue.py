"""Ablation — versioned priority queue vs naive rebuild-every-dequeue.

Appendix E's design re-snapshots queue entries only when a relabel or a
status mismatch invalidates them.  The naive alternative rebuilds the
heap on every dequeue.  We count heap maintenance work on a synthetic
workload with heavy re-threading.
"""

import random

from repro.core.state import OrderState
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.core.pqueue import VersionedPQ
from repro.bench.reporting import render_table

from conftest import save_result


def workload(seed=0, n_items=2000, moves_per_step=2):
    """Enqueue a segment, interleave dequeues with adversarial moves, and
    count snapshot work for (a) the versioned queue and (b) a naive
    rebuild-each-dequeue queue."""
    rng = random.Random(seed)
    state = OrderState.from_graph(
        DynamicGraph([(i, i + 1) for i in range(n_items)])
    )
    ko = state.korder
    seq = ko.sequence(1)
    pq = VersionedPQ(ko, 1)
    for v in seq[:200]:
        pq.enqueue(v)

    versioned_work = 0
    naive_work = 0
    processed = 0
    while len(pq):
        # adversary: re-thread a few queued vertices
        members = [v for v in seq if v in pq]
        for _ in range(moves_per_step):
            if len(members) >= 2:
                a, b = rng.sample(members, 2)
                ko.move_after_vertex(a, b)
        # versioned dequeue: pay per re-snapshot only when forced
        if pq.ver is None or any(
            ko.status(v) != pq.recorded_status(v) for v in members[:1]
        ):
            pq.ver = None
            versioned_work += pq.update_version()
        v = pq.front()
        # validate like Algorithm 13 would
        if v is not None and ko.status(v) != pq.recorded_status(v):
            pq.ver = None
            versioned_work += pq.update_version()
            v = pq.front()
        pq.remove(v)
        versioned_work += 1
        # naive queue rebuilds everything each dequeue
        naive_work += len(members) + 1
        processed += 1
    return versioned_work, naive_work, processed


def test_ablation_pqueue(benchmark, scale, results_dir):
    def experiment():
        rows = []
        for moves in (0, 1, 4):
            vw, nw, n = workload(seed=moves, moves_per_step=moves)
            rows.append(
                {
                    "moves/step": moves,
                    "versioned work": vw,
                    "naive work": nw,
                    "saving": f"{nw / max(vw, 1):.1f}x",
                    "dequeues": n,
                }
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = (
        "Ablation — versioned PQ (Appendix E) vs naive rebuild-per-dequeue\n\n"
        + render_table(rows)
    )
    save_result(results_dir, "ablation_pqueue", text)
    for r in rows:
        assert r["versioned work"] <= r["naive work"]
