"""Figure 3 — core-number distributions of the tested graphs.

Shape to reproduce: heavily skewed (most vertices at small cores, few at
large ones) for the real/web graphs; roadNet-CA bounded at k <= 3; BA a
single spike (every vertex shares one core value).
"""

from repro.bench.harness import fig3_core_distributions
from repro.bench.reporting import render_histogram

from conftest import save_result


def test_fig3(benchmark, scale, results_dir):
    hists = benchmark.pedantic(
        fig3_core_distributions, args=(scale["datasets"],), rounds=1, iterations=1
    )
    sections = ["Figure 3 — core-number distributions (x=core, y=#vertices)"]
    for name, hist in hists.items():
        sections.append(f"\n--- {name} ---\n{render_histogram(hist)}")
    save_result(results_dir, "fig3_core_distribution", "\n".join(sections))

    if "BA" in hists:
        assert len(hists["BA"]) == 1  # single core value
    if "roadNet-CA" in hists:
        assert max(hists["roadNet-CA"]) == 3
    # skew: in every heavy-tailed stand-in, the low-core mass dominates
    for name in ("livej", "RMAT", "wikitalk"):
        if name in hists:
            hist = hists[name]
            low = sum(v for k, v in hist.items() if k <= max(hist) // 2)
            high = sum(v for k, v in hist.items() if k > max(hist) // 2)
            assert low > high
