"""Wall-clock microbenchmarks (pytest-benchmark) for the sequential
kernels: BZ decomposition, OI/OR, TI/TR per-edge maintenance.

These complement the simulated-time experiments with real Python timings;
the OI-vs-TI and OR-vs-TR orderings must hold in wall-clock too.
"""

import pytest

from repro.core.decomposition import core_decomposition
from repro.core.maintainer import OrderMaintainer, TraversalMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import powerlaw_cluster

EDGES = powerlaw_cluster(1200, 5, 0.5, seed=3)
BATCH = EDGES[:: len(EDGES) // 150][:100]


def fresh_graph():
    return DynamicGraph(EDGES)


def test_bz_decomposition(benchmark):
    g = fresh_graph()
    result = benchmark(lambda: core_decomposition(g))
    assert result.max_core >= 3


@pytest.mark.parametrize("cls", [OrderMaintainer, TraversalMaintainer])
def test_insert_batch_wallclock(benchmark, cls):
    def setup():
        g = fresh_graph()
        m = cls(g)
        m.remove_edges(BATCH)
        return (m,), {}

    def run(m):
        m.insert_edges(BATCH)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


@pytest.mark.parametrize("cls", [OrderMaintainer, TraversalMaintainer])
def test_remove_batch_wallclock(benchmark, cls):
    def setup():
        m = cls(fresh_graph())
        return (m,), {}

    def run(m):
        m.remove_edges(BATCH)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


def test_maintenance_beats_recompute(benchmark):
    """The reason core *maintenance* exists: one maintained edge beats a
    from-scratch decomposition by orders of magnitude."""
    m = OrderMaintainer(fresh_graph())
    edge_iter = iter(BATCH)

    def run():
        e = next(edge_iter)
        m.remove_edge(*e)
        m.insert_edge(*e)

    benchmark.pedantic(run, rounds=min(50, len(BATCH) - 1), iterations=1)
