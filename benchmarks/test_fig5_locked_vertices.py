"""Figure 5 — distribution of |V+| (number of locked vertices) per edge.

Shape to reproduce: "more than 97% of inserted or removed edges have
|V+| between 0 and 10" — tiny search sets are why locking only V+ gives
high parallelism.
"""

from repro.bench.harness import fig5_locked_vertices
from repro.bench.reporting import render_histogram

from conftest import save_result


def test_fig5(benchmark, scale, results_dir):
    out = benchmark.pedantic(
        fig5_locked_vertices,
        args=(scale["datasets"],),
        kwargs={"batch_size": scale["batch"], "workers": max(scale["workers"])},
        rounds=1,
        iterations=1,
    )
    sections = ["Figure 5 — |V+| sizes for OurI / OurR"]
    overall_small = overall_total = 0
    for ds, hists in out.items():
        for which, hist in hists.items():
            sections.append(f"\n--- {ds} / {which} ---\n{render_histogram(hist)}")
            small = sum(v for k, v in hist.items() if k <= 10)
            total = sum(hist.values())
            overall_small += small
            overall_total += total
            sections.append(f"|V+| <= 10 for {100.0 * small / total:.1f}% of edges")
    pct = 100.0 * overall_small / overall_total
    sections.append(f"\nOVERALL: |V+| <= 10 for {pct:.1f}% of edges (paper: >97%)")
    save_result(results_dir, "fig5_locked_vertices", "\n".join(sections))
    assert pct >= 90.0
