"""Figure 4 — running time by number of workers, all algorithms.

Per dataset: OurI/OurR, JEI/JER, MI/MR across worker counts, plus the
sequential references (OI/OR == Our at 1 worker; TI/TR measured
separately).  Shape to reproduce (paper Section 5.2):

* OurI/OurR fastest parallel method, MI/MR slowest;
* OI (Our@1) much faster than TI;
* JEI/JER gain little or nothing on single-core-value graphs (BA).
"""

import json

from repro.bench.harness import fig4_running_time, table2_speedups
from repro.bench.reporting import render_log_plot, render_series

from conftest import save_result


def test_fig4(benchmark, scale, results_dir):
    data = benchmark.pedantic(
        fig4_running_time,
        args=(scale["fig4_datasets"],),
        kwargs={"worker_counts": scale["workers"], "batch_size": scale["batch"]},
        rounds=1,
        iterations=1,
    )
    sections = [
        "Figure 4 — running time (work units) by worker count",
        "(OI/OR are the 1-worker Our lines; T = sequential TI/TR reference)",
    ]
    for ds, algos in data.items():
        for phase in ("insert", "remove"):
            series = {
                f"{algo}{'I' if phase == 'insert' else 'R'}": {
                    p: cell[phase] for p, cell in per_p.items()
                }
                for algo, per_p in algos.items()
            }
            sections.append(f"\n--- {ds} / {phase} ---")
            sections.append(render_series(series, title="algo \\ P"))
            sections.append(render_log_plot(series))
    save_result(results_dir, "fig4_running_time", "\n".join(sections))
    # persist raw data for the Table 2 bench
    (results_dir / "fig4_raw.json").write_text(json.dumps(data))

    p_lo, p_hi = min(scale["workers"]), max(scale["workers"])
    our_wins = 0
    for ds, algos in data.items():
        our_i = algos["Our"]
        # Our scales for insertion on every dataset
        assert our_i[p_hi]["insert"] < our_i[p_lo]["insert"]
        # OI (Our@1) is faster than TI
        assert our_i[p_lo]["insert"] < algos["T"][1]["insert"]
        if our_i[p_hi]["insert"] < algos["JE"][p_hi]["insert"]:
            our_wins += 1
    # Our at max workers beats JEI at max workers on a clear majority of
    # datasets (the paper's own Table 2 has a few 0.7-0.8x rows on the
    # sparsest graphs — wiki-links-en, wiki-edits-sh)
    assert our_wins >= 0.7 * len(data)
    if "BA" in data:
        # the level-restricted baseline gains far less than Our on the
        # uniform-core graph (no speedup at paper scale; at reproduction
        # scale the removal phase creates a couple of levels, so allow a
        # small residual gain)
        je = data["BA"]["JE"]
        our = data["BA"]["Our"]
        je_speedup = je[p_lo]["insert"] / je[p_hi]["insert"]
        our_speedup = our[p_lo]["insert"] / our[p_hi]["insert"]
        assert je_speedup <= 0.6 * our_speedup


def test_table2(benchmark, scale, results_dir):
    raw = results_dir / "fig4_raw.json"
    if raw.exists():
        data = json.loads(raw.read_text())
        # JSON stringifies the worker-count keys
        data = {
            ds: {
                algo: {int(p): cell for p, cell in per_p.items()}
                for algo, per_p in algos.items()
            }
            for ds, algos in data.items()
        }
    else:  # standalone run: regenerate at quick scale
        data = fig4_running_time(
            scale["fig4_datasets"],
            worker_counts=scale["workers"],
            batch_size=scale["batch"],
        )
    p_hi = max(scale["workers"])
    rows = benchmark.pedantic(
        table2_speedups, args=(data,), kwargs={"p_hi": p_hi}, rounds=1, iterations=1
    )
    text = "Table 2 — speedups (derived from Figure 4 data)\n\n"
    text += render_series(
        {r["dataset"]: {i: v for i, v in enumerate(r.values()) if isinstance(v, float)} for r in rows},
        title="dataset",
        value_fmt="{:.1f}",
    )
    # also a proper labeled table
    from repro.bench.reporting import render_table

    text += "\n\n" + render_table(rows)
    save_result(results_dir, "table2_speedups", text)

    key = f"OurI vs JEI @{p_hi}"
    scored = [r[key] for r in rows if key in r]
    if scored:
        wins = sum(1 for v in scored if v >= 1.0)
        assert wins >= 0.7 * len(scored)
