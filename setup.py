"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` also works on
machines without the ``wheel`` package / network access (pip falls back to
the legacy setup.py develop path when no [build-system] table is present).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Parallel order-based k-core maintenance in dynamic graphs "
        "(reproduction of Guo & Sekerinski, ICPP 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis", "scipy", "networkx"]},
)
